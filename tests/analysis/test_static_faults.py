"""Unit tests for the static fault-impact analyzer.

The differential grounding against live engine runs lives in
``test_fault_differential.py``; these tests pin the analyzer's own
semantics on hand-built and extracted schedules: taint vs blocking
propagation, the pairing diagnosis of fault-pruned schedules, the
minimal-cut search machinery, and the exact structural cuts.
"""

import pytest

from repro.analysis.static import (
    analyze_fault_impact,
    extract_schedule,
    fault_set_of,
    minimal_cut,
    minimal_cut_table,
    quorum_node_cut,
    quorum_violated,
    rank_included_violated,
    recovery_impact,
    structural_link_cut,
    structural_node_cut,
)
from repro.core.dual_prefix import dual_prefix_program
from repro.core.ops import ADD
from repro.simulator.faults import FaultPlan, StaticFaultView
from repro.topology import DualCube, Hypercube
from repro.topology.faults import FaultSet


@pytest.fixture(scope="module")
def d2_prefix():
    dc = DualCube(2)
    sched = extract_schedule(
        dc, dual_prefix_program(dc, list(range(dc.num_nodes)), ADD)
    )
    assert sched.completed
    return dc, sched


class TestStaticFaultView:
    def test_plan_projection(self):
        plan = FaultPlan(
            node_crashes={3: 2}, link_cuts={(0, 1): 4}, timeout=7,
            on_timeout="cancel",
        )
        view = plan.static_view()
        assert view.crashes == ((3, 2),)
        assert view.cuts == (((0, 1), 4),)
        assert not view.transient
        assert view.timeout == 7
        assert view.on_timeout == "cancel"

    def test_transient_flag(self):
        assert FaultPlan(drop_rate=0.1, seed=1).static_view().transient
        assert FaultPlan(delays={(0, 1): 2}).static_view().transient
        assert not FaultPlan().static_view().transient

    def test_from_faults_pins_cycle_one(self):
        fs = FaultSet(nodes=[5], links=[(2, 1)])
        view = StaticFaultView.from_faults(nodes=fs.nodes, links=fs.links)
        assert view.crashes == ((5, 1),)
        assert view.cuts == (((1, 2), 1),)

    def test_timing_queries(self):
        view = StaticFaultView(crashes=((3, 2),), cuts=(((0, 1), 4),))
        assert not view.node_dead(3, 1)
        assert view.node_dead(3, 2)
        assert view.node_dead(3, 9)
        assert not view.link_down(0, 1, 3)
        assert view.link_down(1, 0, 4)
        # A dead endpoint takes its links down too.
        assert view.link_down(3, 2, 2)

    def test_is_empty(self):
        assert StaticFaultView().is_empty
        assert not StaticFaultView(crashes=((0, 1),)).is_empty
        assert not StaticFaultView(transient=True).is_empty


class TestAnalyzeFaultImpact:
    def test_empty_faults_no_blast(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(sched, FaultSet())
        assert imp.blast_radius == ()
        assert imp.delivered == len(sched.events)
        assert imp.schedule.completed
        assert imp.diagnose() == []

    def test_crash_after_last_use_empty_blast(self, d2_prefix):
        _, sched = d2_prefix
        plan = FaultPlan(node_crashes={0: sched.steps + 1})
        imp = analyze_fault_impact(sched, plan)
        assert imp.blast_radius == ()
        assert imp.dead == ()

    def test_block_semantics_deadlock_cycle(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(
            sched, FaultSet(links=[(0, 1)]), semantics="block"
        )
        # Step 1 pairs 0 <-> 1; the cut blocks both, and the stall
        # cascades through every later exchange.
        assert 0 in imp.blocked and 1 in imp.blocked
        assert imp.blast_radius == tuple(range(8))
        found = {v.code for v in imp.diagnose()}
        assert "deadlock" in found
        cyc = next(v for v in imp.diagnose() if v.code == "deadlock")
        assert "0 -> 1 -> 0" in cyc.message

    def test_crashed_partner_orphan_diagnosis(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(
            sched, FaultPlan(node_crashes={3: 2}), semantics="block"
        )
        assert imp.dead == (3,)
        assert 3 not in imp.blocked
        orphans = [v for v in imp.diagnose() if v.code == "orphan"]
        assert orphans
        assert all("has terminated" in v.message for v in orphans)

    def test_cancel_semantics_taints_not_blocks(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(
            sched, FaultSet(links=[(0, 1)]), semantics="cancel"
        )
        assert imp.blocked == ()
        assert imp.schedule.completed
        assert imp.diagnose() == []
        assert 0 in imp.tainted and 1 in imp.tainted
        # Prefix mixes every rank with every other: full taint closure.
        assert imp.blast_radius == tuple(range(8))

    def test_cancel_dead_ranks_not_tainted(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(
            sched, FaultPlan(node_crashes={3: 1}), semantics="cancel"
        )
        assert imp.dead == (3,)
        assert 3 not in imp.tainted

    def test_semantics_default_follows_plan(self, d2_prefix):
        _, sched = d2_prefix
        blocky = FaultPlan(node_crashes={0: 1})
        cancelly = FaultPlan(
            node_crashes={0: 1}, timeout=3, on_timeout="cancel"
        )
        assert analyze_fault_impact(sched, blocky).semantics == "block"
        assert analyze_fault_impact(sched, cancelly).semantics == "cancel"

    def test_transient_plan_rejected(self, d2_prefix):
        _, sched = d2_prefix
        with pytest.raises(ValueError, match="drop/delay"):
            analyze_fault_impact(sched, FaultPlan(drop_rate=0.5, seed=1))

    def test_downtime_plan_rejected(self, d2_prefix):
        # Bounded outages stall the lockstep, so schedule steps drift
        # from engine cycles: a step-indexed window analysis would be
        # unsound.  The analyzer demands the structural
        # over-approximation instead.
        _, sched = d2_prefix
        with pytest.raises(ValueError, match="downtime"):
            analyze_fault_impact(sched, FaultPlan(downtimes=[(0, 2, 4)]))

    def test_incomplete_baseline_rejected(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(sched, FaultSet(links=[(0, 1)]))
        with pytest.raises(ValueError, match="completed baseline"):
            analyze_fault_impact(imp.schedule, FaultSet())

    def test_crash_rank_out_of_range(self, d2_prefix):
        _, sched = d2_prefix
        with pytest.raises(ValueError, match="outside"):
            analyze_fault_impact(sched, FaultSet(nodes=[99]))

    def test_bad_semantics_rejected(self, d2_prefix):
        _, sched = d2_prefix
        with pytest.raises(ValueError, match="semantics"):
            analyze_fault_impact(sched, FaultSet(), semantics="maybe")

    def test_pruned_schedule_consistency(self, d2_prefix):
        _, sched = d2_prefix
        imp = analyze_fault_impact(sched, FaultSet(links=[(0, 1)]))
        pruned = imp.schedule
        assert not pruned.completed
        assert pruned.stalled_at == 1
        assert len(pruned.events) + len(imp.lost) == len(sched.events)
        assert {b.rank for b in pruned.blocked} == set(imp.blocked)


class TestRecoveryImpact:
    def test_no_faults_everyone_in(self):
        ri = recovery_impact(DualCube(2))
        assert ri.root == 0
        assert ri.excluded == ()
        assert len(ri.members) == 8

    def test_degraded_single_crash(self):
        # D_2 stays connected after one crash: only the crashed rank out.
        ri = recovery_impact(DualCube(2), FaultSet(nodes=[5]))
        assert ri.excluded == (5,)

    def test_root_moves_off_crashed_zero(self):
        ri = recovery_impact(DualCube(2), FaultSet(nodes=[0]))
        assert ri.root == 1
        assert ri.excluded == (0,)

    def test_isolating_cut_strands_root(self):
        # Crash both neighbors' links of rank 0... cut the N(0) links:
        # root 0 keeps its index but reaches nobody.
        dc = DualCube(2)
        cuts = [(0, v) for v in dc.neighbors(0)]
        ri = recovery_impact(dc, FaultSet(links=cuts))
        assert ri.root == 0
        assert ri.members == (0,)
        assert len(ri.excluded) == 7

    def test_reroute_mode(self):
        ri = recovery_impact(
            DualCube(2), FaultSet(nodes=[3]), mode="reroute"
        )
        assert ri.excluded == (3,)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            recovery_impact(DualCube(2), mode="optimistic")


class TestPredicates:
    def test_fault_set_of(self):
        fs = fault_set_of([("node", 3), ("link", (4, 1))])
        assert fs.nodes == frozenset({3})
        assert fs.links == frozenset({(1, 4)})
        with pytest.raises(ValueError, match="kind"):
            fault_set_of([("cpu", 1)])

    def test_rank_included(self):
        dc = DualCube(2)
        violated = rank_included_violated(dc, 5)
        assert violated((("node", 5),))
        assert not violated((("node", 3),))
        # Rank 5 survives but is stranded from root 0: excluded.
        boundary = tuple(("node", v) for v in dc.neighbors(5))
        assert violated(boundary)

    def test_root_always_included_while_alive(self):
        # run_faulty's root is min(healthy): as long as rank 0 lives it
        # IS the root, so only crashing it can exclude it.
        dc = DualCube(2)
        violated = rank_included_violated(dc, 0)
        assert violated((("node", 0),))
        boundary = tuple(("node", v) for v in dc.neighbors(0))
        assert not violated(boundary)

    def test_quorum(self):
        dc = DualCube(2)
        violated = quorum_violated(dc, 0.75)  # need 6 of 8
        assert not violated((("node", 1),))
        # D_2 is 2-regular (an 8-cycle): crashing an *adjacent* pair
        # leaves a connected 6-path, exactly meeting the quorum ...
        assert not violated((("node", 0), ("node", 1)))
        # ... but any third crash drops below it.
        assert violated((("node", 1), ("node", 2), ("node", 3)))
        with pytest.raises(ValueError, match="fraction"):
            quorum_violated(dc, 0.0)


class TestMinimalCut:
    def test_empty_set_violation_short_circuits(self):
        res = minimal_cut(lambda s: True, [1, 2, 3])
        assert res.elements == ()
        assert res.found and res.exact
        assert res.size == 0

    def test_exact_pair(self):
        res = minimal_cut(lambda s: {2, 4} <= set(s), list(range(6)))
        assert set(res.elements) == {2, 4}
        assert res.found and res.exact

    def test_non_monotone_predicate_found_exactly(self):
        # Violated by {1} and by {0, 2} but NOT by supersets of {1} that
        # include 3 — monotone superset pruning would miss this shape.
        def violated(s):
            s = set(s)
            return (1 in s and 3 not in s) or {0, 2} <= s

        res = minimal_cut(violated, [3, 1, 0, 2])
        assert res.elements == (1,)
        assert res.exact

    def test_seed_minimized(self):
        res = minimal_cut(
            lambda s: 7 in set(s),
            list(range(10)),
            seeds=[(5, 6, 7, 8)],
        )
        assert res.elements == (7,)
        assert res.found and res.exact

    def test_budget_marks_inexact(self):
        def violated(s):
            return len(set(s)) >= 3

        res = minimal_cut(
            violated, list(range(30)), seeds=[tuple(range(3))], budget=10
        )
        assert res.found
        assert res.size == 3
        assert not res.exact
        assert res.evaluations <= 10

    def test_no_cut_exact_when_fully_enumerated(self):
        res = minimal_cut(lambda s: False, [1, 2, 3])
        assert not res.found
        assert res.exact
        assert res.size is None

    def test_no_cut_inexact_under_max_size(self):
        res = minimal_cut(lambda s: False, list(range(6)), max_size=2)
        assert not res.found
        assert not res.exact

    def test_deterministic(self):
        def violated(s):
            return len(set(s) & {2, 3, 5}) >= 2

        runs = [
            minimal_cut(violated, list(range(8))) for _ in range(3)
        ]
        assert len({r.elements for r in runs}) == 1


class TestStructuralCuts:
    @pytest.mark.parametrize("n", [2, 3])
    def test_dualcube_connectivity(self, n):
        dc = DualCube(n)
        nc = structural_node_cut(dc)
        lc = structural_link_cut(dc)
        # D_n is n-regular and maximally connected: kappa = lambda = n.
        assert nc.size == n and nc.exact
        assert lc.size == n and lc.exact
        # Witnesses really disconnect a healthy rank.
        ri = recovery_impact(dc, fault_set_of(nc.elements))
        assert any(r not in fault_set_of(nc.elements).nodes
                   for r in ri.excluded)

    def test_hypercube_connectivity(self):
        q = Hypercube(5)
        assert structural_node_cut(q).size == 5
        assert structural_link_cut(q).size == 5

    @pytest.mark.parametrize("n", [2, 3])
    def test_quorum_cut_matches_degree(self, n):
        qc = quorum_node_cut(DualCube(n))
        # Crashing N(0) strands root 0, excluding all but one rank —
        # cheaper than crashing a quarter of the network directly.
        assert qc.size == n
        assert qc.exact


class TestMinimalCutTable:
    @pytest.fixture(scope="class")
    def table(self):
        return minimal_cut_table(max_n=3)

    def test_rows_and_values(self, table):
        assert [r["topology"] for r in table] == ["D_2", "D_3", "Q_5"]
        for r in table:
            assert r["node_cut"] == r["link_cut"] == r["degree"]
            assert r["quorum_cut"] == r["degree"]
            assert r["quorum_exact"]
            assert len(r["node_witness"]) == r["node_cut"]
            assert len(r["link_witness"]) == r["link_cut"]

    def test_deterministic(self, table):
        assert minimal_cut_table(max_n=3) == table

    def test_bad_max_n(self):
        with pytest.raises(ValueError, match="max_n"):
            minimal_cut_table(max_n=1)
