"""The REP lint rules: each fires on its target, noqa suppresses, and the
repo's own src/ tree stays clean."""

import os

import pytest

from repro.analysis.static import LINT_RULES, lint_file, lint_paths, lint_source, profile_for

pytestmark = pytest.mark.lint

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def codes(violations):
    return [v.code for v in violations]


class TestRep001Assert:
    def test_fires(self):
        found = lint_source("def _f(x):\n    assert x > 0\n", "m.py")
        assert "REP001" in codes(found)

    def test_line_number(self):
        found = lint_source("x = 1\nassert x\n", "m.py")
        (v,) = [v for v in found if v.code == "REP001"]
        assert v.line == 2


class TestRep002Random:
    def test_module_level_call_fires(self):
        src = "import random\ndef _f():\n    return random.random()\n"
        assert "REP002" in codes(lint_source(src, "m.py"))

    def test_numpy_alias_resolved(self):
        src = "import numpy as np\ndef _f():\n    return np.random.rand(3)\n"
        found = lint_source(src, "m.py")
        assert "REP002" in codes(found)
        assert "numpy.random.rand" in found[0].message

    def test_from_import_resolved(self):
        src = (
            "from numpy.random import default_rng\n"
            "def _f():\n    return default_rng()\n"
        )
        assert "REP002" in codes(lint_source(src, "m.py"))

    def test_seeded_default_rng_ok(self):
        src = (
            "from numpy.random import default_rng\n"
            "def _f(seed):\n    return default_rng(seed)\n"
        )
        assert lint_source(src, "m.py") == []

    def test_seeded_random_class_ok(self):
        src = "import random\ndef _f():\n    return random.Random(42)\n"
        assert lint_source(src, "m.py") == []

    def test_unseeded_random_class_fires(self):
        src = "import random\ndef _f():\n    return random.Random()\n"
        assert "REP002" in codes(lint_source(src, "m.py"))

    def test_generator_method_not_flagged(self):
        # rng.random() is a method on an object, not module state.
        src = (
            "from numpy.random import default_rng\n"
            "def _f():\n    rng = default_rng(0)\n    return rng.random()\n"
        )
        assert lint_source(src, "m.py") == []


class TestRep003BareExcept:
    def test_fires(self):
        src = "def _f():\n    try:\n        pass\n    except:\n        pass\n"
        assert "REP003" in codes(lint_source(src, "m.py"))

    def test_typed_except_ok(self):
        src = (
            "def _f():\n    try:\n        pass\n"
            "    except ValueError:\n        pass\n"
        )
        assert lint_source(src, "m.py") == []


class TestRep004Print:
    def test_fires_in_library_module(self):
        src = "def _f():\n    print('hi')\n"
        assert "REP004" in codes(lint_source(src, "engine.py"))

    def test_cli_exempt(self):
        src = "def _f():\n    print('hi')\n"
        assert lint_source(src, "src/repro/cli.py") == []

    def test_viz_dir_exempt(self):
        src = "def _f():\n    print('hi')\n"
        assert lint_source(src, "src/repro/viz/ascii_art.py") == []


class TestRep005MissingAll:
    def test_fires_on_public_module(self):
        assert "REP005" in codes(lint_source("def api():\n    pass\n", "m.py"))

    def test_all_declared_ok(self):
        src = "__all__ = ['api']\ndef api():\n    pass\n"
        assert lint_source(src, "m.py") == []

    def test_private_module_exempt(self):
        assert lint_source("def api():\n    pass\n", "_private.py") == []

    def test_init_not_exempt(self):
        found = lint_source("def api():\n    pass\n", "__init__.py")
        assert "REP005" in codes(found)

    def test_private_defs_only_ok(self):
        assert lint_source("def _helper():\n    pass\n", "m.py") == []


class TestNoqa:
    def test_bare_noqa_suppresses(self):
        src = "def _f(x):\n    assert x  # noqa\n"
        assert lint_source(src, "m.py") == []

    def test_coded_noqa_suppresses_matching(self):
        src = "def _f(x):\n    assert x  # noqa: REP001\n"
        assert lint_source(src, "m.py") == []

    def test_coded_noqa_keeps_other_rules(self):
        src = "def _f(x):\n    assert x  # noqa: REP004\n"
        assert "REP001" in codes(lint_source(src, "m.py"))


class TestPaths:
    def test_lint_file_and_paths(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("assert True\n")
        assert codes(lint_file(str(bad))) == ["REP001"]
        assert codes(lint_paths([str(tmp_path)])) == ["REP001"]

    def test_skip_dirs(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("assert True\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_x.py").write_text("assert True\n")
        assert lint_paths([str(tmp_path)]) == []

    def test_rules_documented(self):
        assert set(LINT_RULES) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007",
        }
        assert all(desc for desc in LINT_RULES.values())


class TestRepoIsClean:
    def test_src_tree_passes(self):
        found = lint_paths([SRC])
        assert found == [], "\n".join(str(v) for v in found)


MARK = "# repro: columnar-hot-path\n"


class TestRep006PerRankLoop:
    def test_rank_loop_fires_in_marked_file(self):
        src = MARK + "def _f(num_nodes):\n    for u in range(num_nodes):\n        pass\n"
        found = lint_source(src, "m.py")
        assert "REP006" in codes(found)
        (v,) = [v for v in found if v.code == "REP006"]
        assert "num_nodes" in v.message

    def test_comprehension_over_nodes_fires(self):
        src = MARK + "def _f(topo):\n    return [u for u in topo.nodes()]\n"
        assert "REP006" in codes(lint_source(src, "m.py"))

    def test_arange_iteration_fires(self):
        src = (
            MARK
            + "import numpy as np\n"
            + "def _f(n):\n    for u in np.arange(n):\n        pass\n"
        )
        assert "REP006" in codes(lint_source(src, "m.py"))

    def test_round_and_schedule_loops_pass(self):
        src = (
            MARK
            + "def _f(m, schedule, b):\n"
            + "    for i in range(m):\n        pass\n"
            + "    for k, step in enumerate(schedule):\n        pass\n"
            + "    for k in range(1, b):\n        pass\n"
        )
        assert "REP006" not in codes(lint_source(src, "m.py"))

    def test_unmarked_file_is_exempt(self):
        src = "def _f(num_nodes):\n    for u in range(num_nodes):\n        pass\n"
        assert "REP006" not in codes(lint_source(src, "m.py"))

    def test_noqa_suppresses(self):
        src = (
            MARK
            + "def _f(num_nodes):\n"
            + "    for u in range(num_nodes):  # noqa: REP006\n        pass\n"
        )
        assert "REP006" not in codes(lint_source(src, "m.py"))

    def test_rule_is_documented(self):
        assert "REP006" in LINT_RULES

    def test_marked_repo_files_stay_clean(self):
        # The real columnar modules carry the marker; the rule must hold
        # on them, not only on synthetic snippets.
        marked = [
            os.path.join(SRC, "repro", "simulator", "columnar.py"),
            os.path.join(SRC, "repro", "core", "columnar.py"),
        ]
        for path in marked:
            with open(path, encoding="utf-8") as fh:
                assert "# repro: columnar-hot-path" in fh.read()
            assert lint_file(path) == []


class TestRep007BackendCompare:
    def test_name_eq_fires(self):
        src = "def _f(backend):\n    if backend == 'engine':\n        pass\n"
        found = lint_source(src, "m.py")
        assert "REP007" in codes(found)
        (v,) = [v for v in found if v.code == "REP007"]
        assert "'engine'" in v.message
        assert "resolve_backend" in v.message

    def test_attribute_eq_fires(self):
        src = "def _f(args):\n    if args.backend == 'columnar':\n        pass\n"
        assert "REP007" in codes(lint_source(src, "m.py"))

    def test_not_eq_fires(self):
        src = "def _f(backend):\n    if backend != 'vectorized':\n        pass\n"
        assert "REP007" in codes(lint_source(src, "m.py"))

    def test_reversed_operands_fire(self):
        src = "def _f(backend):\n    if 'engine' == backend:\n        pass\n"
        assert "REP007" in codes(lint_source(src, "m.py"))

    def test_membership_test_is_the_sanctioned_idiom(self):
        src = (
            "def _f(backend):\n"
            "    if backend in ('columnar', 'replay'):\n        pass\n"
        )
        assert "REP007" not in codes(lint_source(src, "m.py"))

    def test_other_names_not_flagged(self):
        src = "def _f(mode):\n    if mode == 'engine':\n        pass\n"
        assert "REP007" not in codes(lint_source(src, "m.py"))

    def test_non_string_compare_not_flagged(self):
        src = "def _f(backend):\n    if backend == 3:\n        pass\n"
        assert "REP007" not in codes(lint_source(src, "m.py"))

    def test_registry_module_exempt(self):
        src = "def _f(backend):\n    if backend == 'engine':\n        pass\n"
        assert lint_source(src, "src/repro/core/backends.py") == []
        # Only the registry module itself, not everything under core/.
        assert "REP007" in codes(
            lint_source(src, "src/repro/core/dual_prefix.py")
        )

    def test_noqa_suppresses(self):
        src = (
            "def _f(backend):\n"
            "    if backend == 'engine':  # noqa: REP007\n        pass\n"
        )
        assert "REP007" not in codes(lint_source(src, "m.py"))

    def test_rule_is_documented(self):
        assert "REP007" in LINT_RULES


class TestRuleProfiles:
    def test_profile_for_paths(self):
        assert profile_for("src/repro/cli.py") == "src"
        assert profile_for("tests/analysis/test_x.py") == "tests"
        assert profile_for("benchmarks/test_e1.py") == "benchmarks"
        # The profile comes from a directory segment, not the filename.
        assert profile_for("src/repro/tests.py") == "src"
        assert profile_for("somewhere/else/mod.py") == "src"

    def test_assert_allowed_under_tests(self):
        src = '"""Doc."""\n\n\ndef f():\n    assert True\n'
        assert lint_source(src, "tests/test_mod.py") == []
        codes = {v.code for v in lint_source(src, "src/mod.py")}
        assert "REP001" in codes

    def test_print_allowed_in_benchmarks_not_tests(self):
        src = '"""Doc."""\n\n__all__ = []\n\nprint("x")\n'
        assert lint_source(src, "benchmarks/test_e0.py") == []
        codes = {v.code for v in lint_source(src, "tests/test_mod.py")}
        assert "REP004" in codes

    def test_explicit_disabled_overrides_profile(self):
        src = '"""Doc."""\n\n\ndef f():\n    assert True\n'
        assert lint_source(src, "src/mod.py", disabled=frozenset({"REP001", "REP005"})) == []
        # And an empty disabled set re-enables everything under tests/.
        codes = {
            v.code
            for v in lint_source(src, "tests/test_mod.py", disabled=frozenset())
        }
        assert "REP001" in codes

    def test_rep002_still_fires_in_tests_profile(self):
        src = (
            '"""Doc."""\n\nimport random\n\n\n'
            "def f():\n    return random.random()\n"
        )
        codes = {v.code for v in lint_source(src, "tests/test_mod.py")}
        assert "REP002" in codes
