"""Tests for experiment-record persistence."""

import json

from repro.analysis.io import (
    ExperimentRecord,
    collect_artifacts,
    load_record,
    save_record,
)
from repro.simulator import CostCounters


class TestRecords:
    def test_from_counters_snapshot(self):
        c = CostCounters(8)
        c.record_comm_step(messages=8)
        rec = ExperimentRecord.from_counters(
            "E4", {"n": 2}, c, notes="prefix run"
        )
        assert rec.experiment == "E4"
        assert rec.parameters == {"n": 2}
        assert rec.counters["comm_steps"] == 1
        assert rec.notes == "prefix run"
        assert "python" in rec.environment

    def test_save_load_roundtrip(self, tmp_path):
        rec = ExperimentRecord("X", {"a": 1}, {"comm_steps": 3}, notes="hi")
        p = save_record(rec, tmp_path / "sub" / "x.json")
        assert p.exists()
        back = load_record(p)
        assert back == rec

    def test_json_is_stable_and_readable(self, tmp_path):
        rec = ExperimentRecord("Y", {"n": 3}, {"messages": 10})
        p = save_record(rec, tmp_path / "y.json")
        data = json.loads(p.read_text())
        assert data["experiment"] == "Y"
        assert data["counters"]["messages"] == 10


class TestCollectArtifacts:
    def test_collects_titles(self, tmp_path):
        (tmp_path / "E1_demo.txt").write_text("Title line\nbody\n")
        (tmp_path / "E2_other.txt").write_text("Other title\n")
        arts = collect_artifacts(tmp_path)
        assert arts == {"E1_demo": "Title line", "E2_other": "Other title"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_artifacts(tmp_path / "nope") == {}

    def test_empty_file_tolerated(self, tmp_path):
        (tmp_path / "empty.txt").write_text("")
        assert collect_artifacts(tmp_path) == {"empty": ""}

    def test_real_benchmark_output_collects(self):
        from pathlib import Path

        out_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "out"
        if out_dir.is_dir():
            arts = collect_artifacts(out_dir)
            assert any(k.startswith("E4") for k in arts)
