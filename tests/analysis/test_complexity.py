"""Tests for the closed-form cost models (Theorems 1-2 reconstructions)."""

import pytest

from repro.analysis import complexity as C


class TestStructureFormulas:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_nodes_edges(self, n):
        assert C.dual_cube_nodes(n) == 2 ** (2 * n - 1)
        assert C.dual_cube_edges(n) == n * 2 ** (2 * n - 2)

    def test_diameter(self):
        assert C.dual_cube_diameter(1) == 1
        assert [C.dual_cube_diameter(n) for n in (2, 3, 4)] == [4, 6, 8]

    def test_same_size_hypercube(self):
        assert C.hypercube_same_size_dim(3) == 5
        assert 2 ** C.hypercube_same_size_dim(4) == C.dual_cube_nodes(4)

    def test_paper_scale_claim(self):
        # "tens of thousands of processors ... up to eight connections":
        # D_8 has 2^15 = 32768 nodes with degree 8.
        assert C.dual_cube_nodes(8) == 32768

    def test_reject_bad_n(self):
        for fn in (C.dual_cube_nodes, C.theorem1_comm_bound, C.theorem2_comm_bound):
            with pytest.raises(ValueError):
                fn(0)


class TestTheorem1:
    @pytest.mark.parametrize("n", range(1, 10))
    def test_bounds_dominate_exact(self, n):
        assert C.dual_prefix_comm_exact(n) <= C.theorem1_comm_bound(n)
        assert C.dual_prefix_comm_exact(n, paper_literal=True) == C.theorem1_comm_bound(n)
        assert C.dual_prefix_comp_exact(n) == C.theorem1_comp_bound(n)

    def test_recurrence_shape(self):
        # 2(n-1) cluster rounds + 2 (or 3) cross exchanges.
        for n in range(1, 8):
            assert C.dual_prefix_comm_exact(n) == 2 * (n - 1) + 2

    def test_against_same_size_hypercube(self):
        # Dual-cube prefix pays exactly one extra step vs Q_{2n-1}.
        for n in range(1, 8):
            assert (
                C.dual_prefix_comm_exact(n)
                == C.hypercube_prefix_steps(2 * n - 1) + 1
            )

    def test_hypercube_prefix_rejects_negative(self):
        with pytest.raises(ValueError):
            C.hypercube_prefix_steps(-1)


class TestTheorem2:
    def test_paper_recurrence_solution(self):
        # T(n) = T(n-1) + 3(4n-3), T(1) = 1  ->  6n^2 - 3n - 2.
        t = 1
        for n in range(2, 12):
            t += 3 * (4 * n - 3)
            assert C.theorem2_comm_bound(n) == t

    def test_exact_packed_recurrence(self):
        # Engine model: dim-0 steps cost 1 (2 per level), others 3.
        t = 1
        for n in range(2, 12):
            t += 3 * (4 * n - 3) - 4
            assert C.dual_sort_comm_exact(n) == t

    def test_exact_single_recurrence(self):
        t = 1
        for n in range(2, 12):
            t += 4 * (4 * n - 5) + 2
            assert C.dual_sort_comm_exact(n, payload_policy="single") == t

    def test_comp_recurrence(self):
        t = 1
        for n in range(2, 12):
            t += 4 * n - 3
            assert C.dual_sort_comp_exact(n) == t
            assert C.theorem2_comp_bound(n) == t

    @pytest.mark.parametrize("n", range(1, 12))
    def test_bound_dominates_exact(self, n):
        assert C.dual_sort_comm_exact(n) <= C.theorem2_comm_bound(n)
        assert (
            C.dual_sort_comm_exact(n, payload_policy="single")
            >= C.dual_sort_comm_exact(n)
        )

    def test_overhead_ratio_monotone_toward_three(self):
        ratios = [C.sort_overhead_ratio(n) for n in range(1, 30)]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 3.0
        assert C.sort_overhead_ratio(200) > 2.95

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            C.dual_sort_comm_exact(2, payload_policy="smoke-signal")

    def test_hypercube_bitonic_formula(self):
        assert C.hypercube_bitonic_steps(5) == 15
        with pytest.raises(ValueError):
            C.hypercube_bitonic_steps(-2)
