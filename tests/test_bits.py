"""Unit and property tests for the bit-manipulation kernel."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import _bits as B

U32 = st.integers(min_value=0, max_value=2**32 - 1)
IDX = st.integers(min_value=0, max_value=31)


class TestScalarBasics:
    def test_bit_reads_binary_digits(self):
        assert [B.bit(0b1010, i) for i in range(4)] == [0, 1, 0, 1]

    def test_set_clear_flip(self):
        assert B.set_bit(0, 3) == 8
        assert B.clear_bit(0b1111, 1) == 0b1101
        assert B.flip_bit(0b1000, 3) == 0

    def test_mask_widths(self):
        assert B.mask(0) == 0
        assert B.mask(1) == 1
        assert B.mask(8) == 255

    def test_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            B.mask(-1)

    def test_extract_insert_field(self):
        x = 0b110_0101
        assert B.extract_field(x, 0, 4) == 0b0101
        assert B.extract_field(x, 4, 3) == 0b110
        assert B.insert_field(x, 0, 4, 0b1111) == 0b110_1111

    def test_insert_truncates_value(self):
        assert B.insert_field(0, 0, 2, 0b111) == 0b11

    def test_swap_fields(self):
        x = 0b101_010
        assert B.swap_fields(x, 0, 3, 3) == 0b010_101

    def test_swap_fields_rejects_overlap(self):
        with pytest.raises(ValueError):
            B.swap_fields(0, 0, 2, 3)

    def test_swap_fields_zero_width(self):
        assert B.swap_fields(7, 0, 0, 0) == 7

    def test_popcount_and_hamming(self):
        assert B.popcount(0) == 0
        assert B.popcount(0b1011) == 3
        assert B.hamming(0b1100, 0b1010) == 2

    def test_to_from_bits_roundtrip(self):
        assert B.to_bits(0b1011, 5) == (0, 1, 0, 1, 1)
        assert B.from_bits((0, 1, 0, 1, 1)) == 0b1011

    def test_bit_string(self):
        assert B.bit_string(5, 5) == "00101"


class TestScalarProperties:
    @given(U32, IDX)
    def test_flip_is_involution(self, x, i):
        assert B.flip_bit(B.flip_bit(x, i), i) == x

    @given(U32, IDX)
    def test_set_then_read(self, x, i):
        assert B.bit(B.set_bit(x, i), i) == 1
        assert B.bit(B.clear_bit(x, i), i) == 0

    @given(U32)
    def test_hamming_to_zero_is_popcount(self, x):
        assert B.hamming(x, 0) == B.popcount(x)

    @given(U32, U32)
    def test_hamming_symmetric(self, x, y):
        assert B.hamming(x, y) == B.hamming(y, x)

    @given(U32, st.integers(min_value=0, max_value=24), st.integers(min_value=0, max_value=8))
    def test_extract_insert_roundtrip(self, x, lo, width):
        val = B.extract_field(x, lo, width)
        assert B.insert_field(x, lo, width, val) == x

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_gray_code_roundtrip(self, i):
        assert B.gray_rank(B.gray_code(i)) == i

    @given(st.integers(min_value=0, max_value=2**16 - 2))
    def test_gray_neighbors_differ_one_bit(self, i):
        assert B.hamming(B.gray_code(i), B.gray_code(i + 1)) == 1

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_interleave_roundtrip(self, a, b):
        assert B.deinterleave(B.interleave(a, b, 8), 8) == (a, b)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_interleave_bit_placement(self, a, b):
        x = B.interleave(a, b, 8)
        for i in range(8):
            assert B.bit(x, 2 * i) == B.bit(b, i)
            assert B.bit(x, 2 * i + 1) == B.bit(a, i)


class TestVectorized:
    def test_bit_v_matches_scalar(self):
        xs = np.arange(64)
        for i in range(6):
            assert list(B.bit_v(xs, i)) == [B.bit(int(x), i) for x in xs]

    def test_flip_bit_v_matches_scalar(self):
        xs = np.arange(64)
        for i in range(6):
            assert list(B.flip_bit_v(xs, i)) == [B.flip_bit(int(x), i) for x in xs]

    def test_extract_field_v_matches_scalar(self):
        xs = np.arange(256)
        assert list(B.extract_field_v(xs, 2, 4)) == [
            B.extract_field(int(x), 2, 4) for x in xs
        ]

    def test_insert_field_v_matches_scalar(self):
        xs = np.arange(256)
        got = B.insert_field_v(xs, 1, 3, xs % 8)
        exp = [B.insert_field(int(x), 1, 3, int(x) % 8) for x in xs]
        assert list(got) == exp

    def test_swap_fields_v_matches_scalar(self):
        xs = np.arange(1 << 7)
        got = B.swap_fields_v(xs, 0, 3, 3)
        exp = [B.swap_fields(int(x), 0, 3, 3) for x in xs]
        assert list(got) == exp

    def test_swap_fields_v_rejects_overlap(self):
        with pytest.raises(ValueError):
            B.swap_fields_v(np.arange(4), 0, 1, 3)

    def test_popcount_v_matches_scalar(self):
        xs = np.arange(512)
        assert list(B.popcount_v(xs)) == [B.popcount(int(x)) for x in xs]

    def test_hamming_v_matches_scalar(self):
        xs = np.arange(128)
        ys = xs[::-1].copy()
        assert list(B.hamming_v(xs, ys)) == [
            B.hamming(int(x), int(y)) for x, y in zip(xs, ys)
        ]

    def test_non_integer_input_rejected(self):
        with pytest.raises(TypeError):
            B.bit_v(np.array([0.5, 1.5]), 0)

    def test_iter_neighbors_xor(self):
        assert list(B.iter_neighbors_xor(0, range(3))) == [1, 2, 4]
