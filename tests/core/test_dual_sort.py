"""Tests for Algorithm 3 — D_sort — and Theorem 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    dual_sort_comm_exact,
    dual_sort_comp_exact,
    hypercube_bitonic_steps,
    theorem2_comm_bound,
    theorem2_comp_bound,
)
from repro.core.dual_sort import (
    ScheduleStep,
    dual_sort,
    dual_sort_engine,
    dual_sort_schedule,
    dual_sort_vec,
    step_cycle_cost,
)
from repro.simulator import CostCounters, TraceRecorder
from repro.topology import RecursiveDualCube


class TestScheduleStructure:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_step_count_is_2nn_minus_n(self, n):
        assert len(dual_sort_schedule(n)) == 2 * n * n - n

    def test_base_case(self):
        sched = dual_sort_schedule(1)
        assert sched == [ScheduleStep(0, "const", 0, phase="base D_1")]
        assert dual_sort_schedule(1, descending=True)[0].dir_val == 1

    def test_recursion_layout_n2(self):
        sched = dual_sort_schedule(2)
        assert [s.dim for s in sched] == [0, 1, 0, 2, 1, 0]
        assert sched[0] == ScheduleStep(0, "bit", 1, phase="base D_1")
        assert all(s == ScheduleStep(s.dim, "bit", 2, phase="half-merge D_2") for s in sched[1:3])
        assert all(s == ScheduleStep(s.dim, "const", 0, phase="full-merge D_2") for s in sched[3:])

    def test_all_dims_in_range(self):
        for n in range(1, 6):
            sched = dual_sort_schedule(n)
            assert all(0 <= s.dim < 2 * n - 1 for s in sched)

    def test_final_merge_spans_all_dims_descending(self):
        for n in (2, 3, 4):
            sched = dual_sort_schedule(n)
            tail = sched[-(2 * n - 1):]
            assert [s.dim for s in tail] == list(range(2 * n - 2, -1, -1))
            assert all(s.dir_kind == "const" for s in tail)

    def test_direction_resolution(self):
        bit_step = ScheduleStep(0, "bit", 2)
        assert not bit_step.descending(0b011)
        assert bit_step.descending(0b100)
        const_step = ScheduleStep(0, "const", 1)
        assert const_step.descending(0) and const_step.descending(7)

    def test_descending_mask_matches_scalar(self):
        idx = np.arange(32)
        for step in dual_sort_schedule(3):
            mask = step.descending_mask(idx)
            assert list(mask) == [step.descending(int(u)) for u in idx]

    def test_bad_step_params_rejected(self):
        with pytest.raises(ValueError):
            ScheduleStep(0, "sideways", 0)
        with pytest.raises(ValueError):
            ScheduleStep(0, "const", 2)
        with pytest.raises(ValueError):
            dual_sort_schedule(0)

    def test_step_cycle_cost(self):
        rdc = RecursiveDualCube(3)
        assert step_cycle_cost(rdc, 0) == 1
        assert step_cycle_cost(rdc, 1) == 3
        assert step_cycle_cost(rdc, 1, "single") == 4


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_vec_sorts_permutations(self, n, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes)
        assert list(dual_sort_vec(rdc, keys)) == list(range(rdc.num_nodes))

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_vec_sorts_duplicates(self, n, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 3, rdc.num_nodes)
        assert list(dual_sort_vec(rdc, keys)) == sorted(keys)

    def test_vec_descending(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.integers(0, 100, 32)
        assert list(dual_sort_vec(rdc, keys, descending=True)) == sorted(
            keys, reverse=True
        )

    @pytest.mark.parametrize("policy", ["packed", "single"])
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_engine_sorts(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = [int(k) for k in rng.integers(0, 1000, rdc.num_nodes)]
        out, _ = dual_sort_engine(rdc, keys, payload_policy=policy)
        assert out == sorted(keys)

    def test_engine_object_keys(self):
        rdc = RecursiveDualCube(2)
        keys = ["pear", "apple", "fig", "date", "plum", "kiwi", "lime", "yuzu"]
        out, _ = dual_sort_engine(rdc, keys)
        assert out == sorted(keys)

    def test_all_equal(self):
        rdc = RecursiveDualCube(2)
        assert list(dual_sort_vec(rdc, np.full(8, 5))) == [5] * 8

    def test_already_sorted_and_reversed(self):
        rdc = RecursiveDualCube(3)
        assert list(dual_sort_vec(rdc, np.arange(32))) == list(range(32))
        assert list(dual_sort_vec(rdc, np.arange(31, -1, -1))) == list(range(32))

    def test_negative_and_float_keys(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.normal(size=32)
        out = dual_sort_vec(rdc, keys)
        assert list(out) == sorted(keys)

    def test_shape_and_policy_validation(self, rng):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            dual_sort_vec(rdc, np.arange(7))
        with pytest.raises(ValueError):
            dual_sort_vec(rdc, np.arange(8), payload_policy="gift-wrapped")
        with pytest.raises(ValueError):
            dual_sort(rdc, np.arange(8), backend="sundial")

    def test_backend_dispatch(self, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 50, 8)
        v = dual_sort(rdc, keys, backend="vectorized")
        e, _ = dual_sort(rdc, [int(k) for k in keys], backend="engine")
        assert list(v) == e


class TestTheorem2Costs:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_engine_comm_steps(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = [int(k) for k in rng.integers(0, 100, rdc.num_nodes)]
        _, res = dual_sort_engine(rdc, keys, payload_policy=policy)
        assert res.comm_steps == dual_sort_comm_exact(n, payload_policy=policy)
        assert res.comp_steps == dual_sort_comp_exact(n)

    @pytest.mark.parametrize("n", range(1, 7))
    def test_exact_model_below_paper_bound(self, n):
        assert dual_sort_comm_exact(n) <= theorem2_comm_bound(n)
        assert dual_sort_comp_exact(n) <= theorem2_comp_bound(n)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_vec_counters_match_formulas(self, n, rng):
        rdc = RecursiveDualCube(n)
        for policy in ("packed", "single"):
            c = CostCounters(rdc.num_nodes)
            dual_sort_vec(
                rdc, rng.integers(0, 50, rdc.num_nodes), counters=c, payload_policy=policy
            )
            assert c.comm_steps == dual_sort_comm_exact(n, payload_policy=policy)
            assert c.comp_steps == dual_sort_comp_exact(n)

    def test_engine_and_vec_counters_fully_agree(self, rng):
        rdc = RecursiveDualCube(2)
        keys = [int(k) for k in rng.integers(0, 100, 8)]
        for policy in ("packed", "single"):
            _, res = dual_sort_engine(rdc, keys, payload_policy=policy)
            c = CostCounters(8)
            dual_sort_vec(rdc, np.array(keys), counters=c, payload_policy=policy)
            assert c.comm_steps == res.comm_steps
            assert c.messages == res.counters.messages
            assert c.payload_items == res.counters.payload_items
            assert c.max_message_payload == res.counters.max_message_payload

    def test_packed_messages_carry_at_most_two_keys(self, rng):
        rdc = RecursiveDualCube(2)
        keys = [int(k) for k in rng.integers(0, 100, 8)]
        _, res = dual_sort_engine(rdc, keys, payload_policy="packed")
        assert res.counters.max_message_payload == 2
        _, res1 = dual_sort_engine(rdc, keys, payload_policy="single")
        assert res1.counters.max_message_payload == 1

    def test_comparisons_equal_hypercube_baseline(self):
        # The overhead is pure communication: comparison rounds match the
        # same-size hypercube exactly.
        for n in range(1, 7):
            assert dual_sort_comp_exact(n) == hypercube_bitonic_steps(2 * n - 1)

    def test_overhead_ratio_below_three(self):
        for n in range(1, 10):
            ratio = dual_sort_comm_exact(n) / hypercube_bitonic_steps(2 * n - 1)
            assert ratio < 3.0


class TestTraces:
    def test_trace_records_every_step(self, rng):
        rdc = RecursiveDualCube(2)
        trace = TraceRecorder()
        dual_sort_vec(rdc, rng.integers(0, 50, 8), trace=trace)
        # input + one label per schedule step
        assert len(trace.labels()) == 1 + len(dual_sort_schedule(2))

    def test_phases_appear_in_labels(self, rng):
        rdc = RecursiveDualCube(3)
        trace = TraceRecorder()
        dual_sort_vec(rdc, rng.integers(0, 50, 32), trace=trace)
        labels = " ".join(trace.labels())
        assert "base D_1" in labels
        assert "half-merge D_2" in labels
        assert "full-merge D_3" in labels


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-(10**6), 10**6), min_size=8, max_size=8))
    def test_sorts_any_input_n2(self, keys):
        rdc = RecursiveDualCube(2)
        assert list(dual_sort_vec(rdc, np.array(keys))) == sorted(keys)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=32, max_size=32), st.booleans())
    def test_sorts_heavy_duplicates_n3(self, keys, descending):
        rdc = RecursiveDualCube(3)
        out = dual_sort_vec(rdc, np.array(keys), descending=descending)
        assert list(out) == sorted(keys, reverse=descending)

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(32))))
    def test_zero_one_principle_spirit_n3(self, keys):
        rdc = RecursiveDualCube(3)
        assert list(dual_sort_vec(rdc, np.array(keys))) == list(range(32))
