"""Tests for the comparator-network module (paper Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sorting_networks import (
    apply_network,
    bitonic_sort_network,
    comparator_count,
    is_dimension_exchange_network,
    network_depth,
    odd_even_merge_sort_network,
    verify_zero_one,
)


class TestBitonicNetwork:
    @pytest.mark.parametrize("w", [1, 2, 4, 8, 16])
    def test_zero_one_principle(self, w):
        assert verify_zero_one(bitonic_sort_network(w), w)

    @pytest.mark.parametrize("w", [2, 4, 8, 16, 32])
    def test_depth_is_q_qplus1_over_2(self, w):
        q = w.bit_length() - 1
        assert network_depth(bitonic_sort_network(w)) == q * (q + 1) // 2

    @pytest.mark.parametrize("w", [2, 4, 8, 16, 32])
    def test_comparator_count(self, w):
        q = w.bit_length() - 1
        assert comparator_count(bitonic_sort_network(w)) == (w // 2) * q * (q + 1) // 2

    def test_all_comparators_are_dimension_exchanges(self):
        for w in (2, 4, 8, 16, 32):
            assert is_dimension_exchange_network(bitonic_sort_network(w))

    def test_matches_hypercube_schedule_executor(self, rng):
        """Same algorithm, two formulations: comparator network vs the
        dimension-exchange schedule the dual-cube emulates."""
        from repro.core.bitonic import hypercube_bitonic_sort_vec

        keys = rng.integers(0, 1000, 32)
        net = apply_network(keys, bitonic_sort_network(32))
        sched = hypercube_bitonic_sort_vec(keys)
        assert list(net) == list(sched) == sorted(keys)


class TestOddEvenNetwork:
    @pytest.mark.parametrize("w", [1, 2, 4, 8, 16])
    def test_zero_one_principle(self, w):
        assert verify_zero_one(odd_even_merge_sort_network(w), w)

    @pytest.mark.parametrize("w", [4, 8, 16, 32, 64])
    def test_sorts_random_keys(self, w, rng):
        keys = rng.integers(-1000, 1000, w)
        assert list(apply_network(keys, odd_even_merge_sort_network(w))) == sorted(keys)

    @pytest.mark.parametrize("w", [2, 4, 8, 16, 32])
    def test_same_depth_as_bitonic(self, w):
        assert network_depth(odd_even_merge_sort_network(w)) == network_depth(
            bitonic_sort_network(w)
        )

    @pytest.mark.parametrize("w", [4, 8, 16, 32])
    def test_fewer_comparators_than_bitonic(self, w):
        assert comparator_count(odd_even_merge_sort_network(w)) < comparator_count(
            bitonic_sort_network(w)
        )

    @pytest.mark.parametrize("w", [4, 8, 16, 32])
    def test_not_a_dimension_exchange_network(self, w):
        """Why the paper builds the dual-cube sort on bitonic instead."""
        assert not is_dimension_exchange_network(odd_even_merge_sort_network(w))


class TestApplyNetwork:
    def test_stage_index_reuse_rejected(self):
        with pytest.raises(ValueError):
            apply_network([3, 1, 2], [[(0, 1), (1, 2)]])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            bitonic_sort_network(6)
        with pytest.raises(ValueError):
            odd_even_merge_sort_network(0)

    def test_input_not_mutated(self):
        keys = np.array([3, 1, 2, 0])
        apply_network(keys, bitonic_sort_network(4))
        assert list(keys) == [3, 1, 2, 0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 9), min_size=16, max_size=16))
    def test_property_both_networks_sort(self, keys):
        arr = np.array(keys)
        assert list(apply_network(arr, bitonic_sort_network(16))) == sorted(keys)
        assert list(apply_network(arr, odd_even_merge_sort_network(16))) == sorted(keys)


class TestScheduleToNetwork:
    """Exhaustive 0-1 certification of the paper's actual schedules."""

    def test_dual_sort_schedule_n2_certified(self):
        from repro.core.dual_sort import dual_sort_schedule
        from repro.core.sorting_networks import schedule_to_network

        net = schedule_to_network(dual_sort_schedule(2), 8)
        assert verify_zero_one(net, 8)

    def test_descending_schedule_reverses(self, rng):
        from repro.core.dual_sort import dual_sort_schedule
        from repro.core.sorting_networks import schedule_to_network

        net = schedule_to_network(dual_sort_schedule(2, descending=True), 8)
        out = apply_network(rng.permutation(8), net)
        assert list(out) == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_bitonic_schedule_equals_bitonic_network(self):
        from repro.core.bitonic import bitonic_schedule
        from repro.core.sorting_networks import schedule_to_network

        for q in (1, 2, 3, 4):
            assert schedule_to_network(bitonic_schedule(q), 1 << q) == (
                bitonic_sort_network(1 << q)
            )

    def test_truncated_schedule_fails_certification(self):
        from repro.core.dual_sort import dual_sort_schedule
        from repro.core.sorting_networks import schedule_to_network

        broken = dual_sort_schedule(2)[:-1]
        assert not verify_zero_one(schedule_to_network(broken, 8), 8)

    def test_wrong_direction_fails_certification(self):
        from repro.core.dual_sort import ScheduleStep, dual_sort_schedule
        from repro.core.sorting_networks import schedule_to_network

        sched = dual_sort_schedule(2)
        # Flip the final step's direction.
        sched[-1] = ScheduleStep(sched[-1].dim, "const", 1)
        assert not verify_zero_one(schedule_to_network(sched, 8), 8)

    def test_hypercube_schedule_certified_width16(self):
        from repro.core.bitonic import bitonic_schedule
        from repro.core.sorting_networks import schedule_to_network

        assert verify_zero_one(schedule_to_network(bitonic_schedule(4), 16), 16)
