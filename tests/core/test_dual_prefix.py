"""Tests for Algorithm 2 — D_prefix — and Theorem 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_prefix_comp_exact,
    theorem1_comm_bound,
    theorem1_comp_bound,
)
from repro.core.dual_prefix import dual_prefix, dual_prefix_engine, dual_prefix_vec
from repro.core.ops import ADD, CONCAT, MATMUL2, MAX
from repro.core.verify import check_prefix
from repro.simulator import CostCounters, TraceRecorder
from repro.topology import DualCube


def tuple_values(n, rng):
    out = np.empty(n, dtype=object)
    out[:] = [(int(x),) for x in rng.integers(0, 100, n)]
    return out


class TestCorrectness:
    def test_engine_inclusive_concat(self, dc, rng):
        vals = tuple_values(dc.num_nodes, rng)
        pre, _ = dual_prefix_engine(dc, vals, CONCAT)
        check_prefix(list(vals), pre, CONCAT)

    def test_engine_diminished_concat(self, dc, rng):
        vals = tuple_values(dc.num_nodes, rng)
        pre, _ = dual_prefix_engine(dc, vals, CONCAT, inclusive=False)
        check_prefix(list(vals), pre, CONCAT, inclusive=False)

    def test_engine_paper_literal_same_output(self, dc, rng):
        vals = tuple_values(dc.num_nodes, rng)
        a, _ = dual_prefix_engine(dc, vals, CONCAT, paper_literal=False)
        b, _ = dual_prefix_engine(dc, vals, CONCAT, paper_literal=True)
        assert list(a) == list(b)

    def test_vectorized_add_matches_cumsum(self, dc, rng):
        vals = rng.integers(-100, 100, dc.num_nodes)
        assert list(dual_prefix_vec(dc, vals, ADD)) == list(np.cumsum(vals))

    def test_vectorized_diminished(self, dc, rng):
        vals = rng.integers(0, 100, dc.num_nodes)
        got = dual_prefix_vec(dc, vals, ADD, inclusive=False)
        assert list(got) == [0] + list(np.cumsum(vals[:-1]))

    def test_vectorized_matmul(self, rng):
        dc = DualCube(3)
        mats = np.empty(32, dtype=object)
        mats[:] = [
            tuple(int(x) for x in rng.integers(-2, 3, 4)) for _ in range(32)
        ]
        pre = dual_prefix_vec(dc, mats, MATMUL2)
        check_prefix(list(mats), pre, MATMUL2)

    def test_running_max(self, rng):
        dc = DualCube(3)
        vals = rng.integers(-1000, 1000, 32)
        got = dual_prefix_vec(dc, vals, MAX)
        assert list(got) == list(np.maximum.accumulate(vals))

    def test_engine_vec_identical_results(self, dc, rng):
        vals = tuple_values(dc.num_nodes, rng)
        a, _ = dual_prefix_engine(dc, vals, CONCAT)
        b = dual_prefix_vec(dc, vals, CONCAT)
        assert list(a) == list(b)

    def test_shape_validation(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            dual_prefix_vec(dc, np.arange(5), ADD)

    def test_backend_dispatch(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 10, 8)
        v = dual_prefix(dc, vals, ADD, backend="vectorized")
        e, _ = dual_prefix(dc, vals.astype(object), ADD, backend="engine")
        assert list(v) == list(e)
        with pytest.raises(ValueError):
            dual_prefix(dc, vals, ADD, backend="quantum")


class TestTheorem1Costs:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("paper_literal", [False, True])
    def test_engine_step_counts(self, n, paper_literal, rng):
        dc = DualCube(n)
        vals = tuple_values(dc.num_nodes, rng)
        _, res = dual_prefix_engine(dc, vals, CONCAT, paper_literal=paper_literal)
        assert res.comm_steps == dual_prefix_comm_exact(
            n, paper_literal=paper_literal
        )
        assert res.comp_steps == dual_prefix_comp_exact(n)
        # Theorem 1's "at most" bounds hold for both variants.
        assert res.comm_steps <= theorem1_comm_bound(n)
        assert res.comp_steps <= theorem1_comp_bound(n)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("paper_literal", [False, True])
    def test_vec_counters_equal_engine_formulas(self, n, paper_literal, rng):
        dc = DualCube(n)
        c = CostCounters(dc.num_nodes)
        dual_prefix_vec(
            dc,
            rng.integers(0, 10, dc.num_nodes),
            ADD,
            paper_literal=paper_literal,
            counters=c,
        )
        assert c.comm_steps == dual_prefix_comm_exact(n, paper_literal=paper_literal)
        assert c.comp_steps == dual_prefix_comp_exact(n)

    def test_counters_fully_match_between_backends(self, dc, rng):
        vals = tuple_values(dc.num_nodes, rng)
        _, res = dual_prefix_engine(dc, vals, CONCAT)
        c = CostCounters(dc.num_nodes)
        dual_prefix_vec(dc, vals, CONCAT, counters=c)
        assert c.comm_steps == res.comm_steps
        assert c.comp_steps == res.comp_steps
        assert c.messages == res.counters.messages

    def test_faster_than_nothing_but_close_to_hypercube(self):
        # Same-size hypercube needs 2n-1 steps; dual-cube needs 2n — the
        # paper's "almost as efficient as in hypercube".
        for n in range(1, 8):
            assert dual_prefix_comm_exact(n) == (2 * n - 1) + 1


class TestTraces:
    def test_trace_has_six_figure3_panels(self, rng):
        dc = DualCube(3)
        trace = TraceRecorder()
        dual_prefix_vec(dc, np.arange(1, 33), ADD, trace=trace)
        labels = trace.labels()
        for tag in ("(a)", "(b)", "(c)", "(d)", "(e)", "(f)"):
            assert any(lbl.startswith(tag) for lbl in labels), tag

    def test_engine_trace_matches_vec_trace(self, rng):
        dc = DualCube(2)
        vals = tuple_values(8, rng)
        t1, t2 = TraceRecorder(), TraceRecorder()
        dual_prefix_engine(dc, vals, CONCAT, trace=t1)
        dual_prefix_vec(dc, vals, CONCAT, trace=t2)
        for lbl in t2.labels():
            assert t1.snapshot(lbl, 8) == t2.snapshot(lbl, 8), lbl


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-(10**9), 10**9), min_size=8, max_size=8),
        st.booleans(),
    )
    def test_prefix_sum_any_ints(self, vals, inclusive):
        dc = DualCube(2)
        got = dual_prefix_vec(
            dc, np.array(vals, dtype=np.int64), ADD, inclusive=inclusive
        )
        check_prefix(vals, got, ADD, inclusive=inclusive)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.booleans(), st.booleans())
    def test_all_sizes_all_variants_concat(self, n, inclusive, paper_literal):
        dc = DualCube(n)
        rng = np.random.default_rng(n)
        vals = tuple_values(dc.num_nodes, rng)
        got = dual_prefix_vec(
            dc, vals, CONCAT, inclusive=inclusive, paper_literal=paper_literal
        )
        check_prefix(list(vals), got, CONCAT, inclusive=inclusive)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=32, max_size=32))
    def test_float_prefix_close_to_cumsum(self, vals):
        dc = DualCube(3)
        got = dual_prefix_vec(dc, np.array(vals), ADD)
        # Tree order differs from serial order; allow float reassociation.
        np.testing.assert_allclose(got, np.cumsum(vals), rtol=1e-9, atol=1e-6)


class TestSuffixScan:
    def test_suffix_sum(self, rng):
        from repro.core.dual_prefix import dual_suffix_vec

        dc = DualCube(3)
        vals = rng.integers(-100, 100, 32)
        suf = dual_suffix_vec(dc, vals, ADD)
        assert list(suf) == list(np.cumsum(vals[::-1])[::-1])

    def test_suffix_non_commutative_order(self):
        from repro.core.dual_prefix import dual_suffix_vec

        dc = DualCube(2)
        vals = np.empty(8, dtype=object)
        vals[:] = [(k,) for k in range(8)]
        suf = dual_suffix_vec(dc, vals, CONCAT)
        for k in range(8):
            assert suf[k] == tuple(range(k, 8))

    def test_suffix_diminished(self, rng):
        from repro.core.dual_prefix import dual_suffix_vec

        dc = DualCube(2)
        vals = rng.integers(0, 50, 8)
        suf = dual_suffix_vec(dc, vals, ADD, inclusive=False)
        expect = list(np.cumsum(vals[::-1])[::-1])[1:] + [0]
        assert list(suf) == expect

    def test_suffix_costs_match_prefix(self, rng):
        from repro.core.dual_prefix import dual_suffix_vec

        dc = DualCube(3)
        c = CostCounters(32)
        dual_suffix_vec(dc, rng.integers(0, 9, 32), ADD, counters=c)
        assert c.comm_steps == 6

    def test_prefix_plus_suffix_identity(self, rng):
        """inclusive prefix[k] + diminished suffix[k+1...] == total."""
        from repro.core.dual_prefix import dual_suffix_vec

        dc = DualCube(3)
        vals = rng.integers(-50, 50, 32)
        pre = dual_prefix_vec(dc, vals, ADD)
        suf = dual_suffix_vec(dc, vals, ADD, inclusive=False)
        assert all(p + s == vals.sum() for p, s in zip(pre, suf))
