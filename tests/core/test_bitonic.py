"""Tests for bitonic machinery and the hypercube baseline sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import hypercube_bitonic_steps
from repro.core.bitonic import (
    bitonic_schedule,
    hypercube_bitonic_sort,
    hypercube_bitonic_sort_vec,
    is_bitonic,
)
from repro.simulator import CostCounters
from repro.topology import Hypercube


class TestIsBitonic:
    def test_monotone_sequences(self):
        assert is_bitonic([1, 2, 3, 4])
        assert is_bitonic([4, 3, 2, 1])
        assert is_bitonic([5, 5, 5])

    def test_rise_then_fall(self):
        assert is_bitonic([1, 4, 6, 3, 2])

    def test_fall_then_rise(self):
        assert is_bitonic([6, 2, 1, 5, 9])

    def test_cyclic_rotation(self):
        assert is_bitonic([3, 4, 5, 1, 2])  # rotation of sorted

    def test_rejects_three_direction_changes(self):
        assert not is_bitonic([1, 3, 2, 4, 1, 5])

    def test_tiny_sequences(self):
        assert is_bitonic([])
        assert is_bitonic([7])
        assert is_bitonic([2, 1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=32), st.integers(0, 31))
    def test_rotations_of_unimodal_are_bitonic(self, vals, r):
        up = sorted(vals)
        down = sorted(vals, reverse=True)
        uni = up + down  # rises then falls
        rot = uni[r % len(uni):] + uni[: r % len(uni)]
        assert is_bitonic(rot)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=64))
    def test_sorted_always_bitonic(self, vals):
        assert is_bitonic(sorted(vals))


class TestSchedule:
    @pytest.mark.parametrize("q", range(7))
    def test_step_count(self, q):
        assert len(bitonic_schedule(q)) == hypercube_bitonic_steps(q) == q * (q + 1) // 2

    def test_dims_descend_within_stage(self):
        sched = bitonic_schedule(4)
        pos = 0
        for k in range(1, 5):
            dims = [s.dim for s in sched[pos : pos + k]]
            assert dims == list(range(k - 1, -1, -1))
            pos += k

    def test_final_stage_direction_constant(self):
        for descending in (False, True):
            sched = bitonic_schedule(3, descending=descending)
            last = sched[-3:]
            assert all(s.dir_kind == "const" and s.dir_val == int(descending) for s in last)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bitonic_schedule(-1)


class TestHypercubeSort:
    @pytest.mark.parametrize("q", range(1, 7))
    def test_sorts_random_permutation(self, q, rng):
        keys = rng.permutation(1 << q)
        assert list(hypercube_bitonic_sort_vec(keys)) == list(range(1 << q))

    @pytest.mark.parametrize("q", range(1, 6))
    def test_sorts_with_duplicates(self, q, rng):
        keys = rng.integers(0, 4, 1 << q)
        assert list(hypercube_bitonic_sort_vec(keys)) == sorted(keys)

    def test_descending(self, rng):
        keys = rng.integers(0, 100, 32)
        out = hypercube_bitonic_sort_vec(keys, descending=True)
        assert list(out) == sorted(keys, reverse=True)

    def test_engine_matches_vec(self, rng):
        keys = rng.integers(0, 1000, 16)
        out_v = hypercube_bitonic_sort_vec(keys)
        out_e, res = hypercube_bitonic_sort([int(k) for k in keys], backend="engine")
        assert list(out_v) == out_e
        assert res.comm_steps == hypercube_bitonic_steps(4)

    def test_vec_counters(self, rng):
        c = CostCounters(32)
        hypercube_bitonic_sort_vec(rng.integers(0, 10, 32), counters=c)
        assert c.comm_steps == c.comp_steps == hypercube_bitonic_steps(5)
        assert c.messages == hypercube_bitonic_steps(5) * 32
        assert c.max_message_payload == 1  # no relaying in the hypercube

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            hypercube_bitonic_sort_vec(np.arange(5))
        with pytest.raises(ValueError):
            hypercube_bitonic_sort([1, 2, 3], backend="engine")
        with pytest.raises(ValueError):
            hypercube_bitonic_sort([1, 2], backend="abacus")

    def test_all_equal_keys(self):
        out = hypercube_bitonic_sort_vec(np.full(16, 7))
        assert list(out) == [7] * 16

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=16, max_size=16))
    def test_property_sorts_anything(self, keys):
        assert list(hypercube_bitonic_sort_vec(np.array(keys))) == sorted(keys)

    def test_object_keys_on_engine(self):
        keys = ["pear", "apple", "fig", "date", "plum", "kiwi", "lime", "yuzu"]
        out, _ = hypercube_bitonic_sort(keys, backend="engine")
        assert out == sorted(keys)
