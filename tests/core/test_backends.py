"""The backend registry: introspection, the cross-backend result/counter
matrix for every entry point, and the uniformly-worded dispatch errors
(unknown backend + capability guards) the registry pins."""

import numpy as np
import pytest

from repro.core import (
    ADD,
    BackendSpec,
    backend_names,
    backend_spec,
    dual_prefix,
    dual_sort,
    entry_points,
    hypercube_bitonic_sort,
    large_prefix,
    large_sort,
    resolve_backend,
    sequential_prefix,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.timeline import TimelineRecorder
from repro.simulator import CostCounters, TraceRecorder
from repro.topology import DualCube, RecursiveDualCube

ARRAY_BACKENDS = ("vectorized", "columnar", "replay")


class TestRegistryIntrospection:
    def test_entry_points(self):
        assert entry_points() == (
            "bitonic",
            "dual_prefix",
            "dual_sort",
            "large_prefix",
            "large_sort",
        )

    def test_backend_names(self):
        assert backend_names("dual_prefix") == (
            "columnar", "engine", "replay", "vectorized",
        )
        assert backend_names("dual_sort") == (
            "columnar", "engine", "replay", "vectorized",
        )
        assert backend_names("bitonic") == (
            "columnar", "engine", "replay", "vectorized",
        )
        # The large-input entry points have no backend="engine": the
        # cycle-accurate variant is the separate large_prefix_engine.
        assert backend_names("large_prefix") == (
            "columnar", "replay", "vectorized",
        )
        assert backend_names("large_sort") == (
            "columnar", "replay", "vectorized",
        )

    def test_specs_declare_capabilities_once(self):
        spec = backend_spec("dual_prefix", "vectorized")
        assert isinstance(spec, BackendSpec)
        assert spec.features == {"counters", "trace", "profiler"}
        assert spec.returns == "result array"
        assert backend_spec("dual_prefix", "engine").returns == (
            "(result array, EngineResult)"
        )
        assert backend_spec("dual_prefix", "replay").features == {
            "counters", "shards",
        }
        # Sharding exists only on the prefix family's replay backends.
        for ep in entry_points():
            for name in backend_names(ep):
                shards_ok = "shards" in backend_spec(ep, name).features
                assert shards_ok == (
                    name == "replay" and ep in ("dual_prefix", "large_prefix")
                ), (ep, name)

    def test_unknown_entry_point(self):
        with pytest.raises(ValueError, match="unknown entry point 'nope'"):
            backend_names("nope")
        with pytest.raises(ValueError, match="unknown entry point"):
            resolve_backend("nope", "vectorized")

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown backend feature"):
            resolve_backend("dual_prefix", "vectorized", warp=True)

    def test_spec_rejects_undeclared_features(self):
        with pytest.raises(ValueError, match="unknown features"):
            BackendSpec(
                entry_point="x", name="y", features=frozenset({"magic"}),
                returns="r", description="d", loader=lambda: None,
            )


class TestUnknownBackendMessages:
    """Satellite fix: one shared message shape for every entry point."""

    def test_dual_prefix(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError,
            match=r"unknown backend 'nope' for dual_prefix; choose one of "
                  r"'columnar', 'engine', 'replay', 'vectorized'",
        ):
            dual_prefix(dc, np.arange(dc.num_nodes), ADD, backend="nope")

    def test_dual_sort(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(
            ValueError,
            match=r"unknown backend 'nope' for dual_sort; choose one of "
                  r"'columnar', 'engine', 'replay', 'vectorized'",
        ):
            dual_sort(rdc, np.arange(rdc.num_nodes), backend="nope")

    def test_bitonic(self):
        with pytest.raises(
            ValueError,
            match=r"unknown backend 'nope' for bitonic; choose one of "
                  r"'columnar', 'engine', 'replay', 'vectorized'",
        ):
            hypercube_bitonic_sort(np.arange(8), backend="nope")

    def test_large_prefix_names_the_engine_entry_point(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError,
            match=r"unknown backend 'engine' for large_prefix; choose one "
                  r"of 'columnar', 'replay', 'vectorized' "
                  r"\(large_prefix_engine is the cycle-accurate entry "
                  r"point\)",
        ):
            large_prefix(dc, np.arange(dc.num_nodes), ADD, backend="engine")

    def test_large_sort(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(
            ValueError,
            match=r"unknown backend 'nope' for large_sort; choose one of "
                  r"'columnar', 'replay', 'vectorized'",
        ):
            large_sort(rdc, np.arange(rdc.num_nodes), backend="nope")


class TestCapabilityGuards:
    """Every (entry point, backend) rejects unsupported keywords with the
    registry's uniform wording — including combinations the old inline
    chains silently mishandled (dual_prefix profiler, bitonic columnar)."""

    def test_engine_rejects_external_counters(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError, match="takes no external counters"
        ):
            dual_prefix(
                dc, np.arange(dc.num_nodes), ADD, backend="engine",
                counters=CostCounters(dc.num_nodes),
            )

    def test_columnar_rejects_trace(self):
        # Wording pinned by the pre-registry columnar suite too.
        dc = DualCube(2)
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            dual_prefix(
                dc, np.arange(dc.num_nodes), ADD, backend="columnar",
                trace=TraceRecorder(),
            )

    def test_columnar_rejects_profiler(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError, match="has no per-phase profiling hooks"
        ):
            dual_prefix(
                dc, np.arange(dc.num_nodes), ADD, backend="columnar",
                profiler=PhaseProfiler(),
            )

    def test_vectorized_rejects_shards(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError,
            match=r"the 'vectorized' backend of dual_prefix has no "
                  r"multiprocessing sharding; shards is supported by: "
                  r"'replay'",
        ):
            dual_prefix(
                dc, np.arange(dc.num_nodes), ADD, backend="vectorized",
                shards=2,
            )

    def test_dual_prefix_replay_rejects_trace_and_profiler(self):
        dc = DualCube(2)
        vals = np.arange(dc.num_nodes)
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            dual_prefix(dc, vals, ADD, backend="replay", trace=TraceRecorder())
        with pytest.raises(ValueError, match="profiling hooks"):
            dual_prefix(
                dc, vals, ADD, backend="replay", profiler=PhaseProfiler()
            )

    def test_dual_sort_guards(self):
        rdc = RecursiveDualCube(2)
        keys = np.arange(rdc.num_nodes)
        with pytest.raises(ValueError, match="takes no external counters"):
            dual_sort(
                rdc, keys, backend="engine",
                counters=CostCounters(rdc.num_nodes),
            )
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            dual_sort(rdc, keys, backend="replay", trace=TraceRecorder())
        with pytest.raises(ValueError, match="profiling hooks"):
            dual_sort(rdc, keys, backend="columnar", profiler=PhaseProfiler())

    def test_large_prefix_guards(self):
        dc = DualCube(2)
        vals = np.arange(dc.num_nodes * 4)
        with pytest.raises(
            ValueError,
            match=r"the 'vectorized' backend of large_prefix has no "
                  r"multiprocessing sharding",
        ):
            large_prefix(dc, vals, ADD, backend="vectorized", shards=2)
        with pytest.raises(ValueError, match="multiprocessing sharding"):
            large_prefix(dc, vals, ADD, backend="columnar", shards=2)

    def test_bitonic_guards(self):
        keys = np.arange(8)
        with pytest.raises(ValueError, match="takes no external counters"):
            hypercube_bitonic_sort(
                keys, backend="engine", counters=CostCounters(8)
            )
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            hypercube_bitonic_sort(
                keys, backend="columnar", trace=TraceRecorder()
            )
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            hypercube_bitonic_sort(
                keys, backend="replay", trace=TraceRecorder()
            )

    def test_error_lists_supporting_backends(self):
        with pytest.raises(
            ValueError,
            match=r"trace is supported by: 'engine', 'vectorized'",
        ):
            resolve_backend("dual_sort", "columnar", trace=True)

    def test_false_requests_pass(self):
        # Passing feature=False (keyword left at None by the caller) never
        # trips the guard, whatever the backend.
        for ep in entry_points():
            for name in backend_names(ep):
                assert callable(
                    resolve_backend(
                        ep, name, counters=False, trace=False,
                        profiler=False, shards=False,
                    )
                )


class TestCrossBackendMatrix:
    """The acceptance matrix: every array backend of every entry point
    produces identical results AND identical counter ledgers on D_2..D_4."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_dual_prefix(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 1000, dc.num_nodes)
        results, summaries = {}, {}
        for backend in ARRAY_BACKENDS:
            c = CostCounters(dc.num_nodes)
            results[backend] = dual_prefix(
                dc, vals, ADD, backend=backend, counters=c
            )
            summaries[backend] = c.summary()
        expected = sequential_prefix(vals.tolist(), ADD)
        for backend in ARRAY_BACKENDS:
            assert results[backend].tolist() == expected, backend
            assert summaries[backend] == summaries["vectorized"], backend
        out, res = dual_prefix(dc, vals, ADD, backend="engine")
        assert list(out) == expected
        assert res.counters.summary() == summaries["vectorized"]

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_dual_sort(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes)
        summaries = {}
        for backend in ARRAY_BACKENDS:
            c = CostCounters(rdc.num_nodes)
            out = dual_sort(
                rdc, keys, backend=backend, payload_policy=policy, counters=c
            )
            assert out.tolist() == sorted(keys.tolist()), backend
            summaries[backend] = c.summary()
        for backend in ARRAY_BACKENDS:
            assert summaries[backend] == summaries["vectorized"], backend
        out, res = dual_sort(
            rdc, keys, backend="engine", payload_policy=policy
        )
        assert list(out) == sorted(keys.tolist())
        assert res.counters.summary() == summaries["vectorized"]

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_large_prefix(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 1000, dc.num_nodes * 4)
        summaries = {}
        for backend in ARRAY_BACKENDS:
            c = CostCounters(dc.num_nodes)
            out = large_prefix(dc, vals, ADD, backend=backend, counters=c)
            assert out.tolist() == np.cumsum(vals).tolist(), backend
            summaries[backend] = c.summary()
        for backend in ARRAY_BACKENDS:
            assert summaries[backend] == summaries["vectorized"], backend

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_large_sort(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes * 4)
        summaries = {}
        for backend in ARRAY_BACKENDS:
            c = CostCounters(rdc.num_nodes)
            out = large_sort(
                rdc, keys, backend=backend, payload_policy=policy, counters=c
            )
            assert out.tolist() == sorted(keys.tolist()), backend
            summaries[backend] = c.summary()
        for backend in ARRAY_BACKENDS:
            assert summaries[backend] == summaries["vectorized"], backend

    @pytest.mark.parametrize("q", [1, 2, 3])
    @pytest.mark.parametrize("descending", [False, True])
    def test_bitonic(self, q, descending, rng):
        keys = rng.permutation(2**q)
        summaries = {}
        for backend in ARRAY_BACKENDS:
            c = CostCounters(len(keys))
            out = hypercube_bitonic_sort(
                keys, backend=backend, descending=descending, counters=c
            )
            expected = sorted(keys.tolist(), reverse=descending)
            assert out.tolist() == expected, backend
            summaries[backend] = c.summary()
        for backend in ARRAY_BACKENDS:
            assert summaries[backend] == summaries["vectorized"], backend
        out, res = hypercube_bitonic_sort(
            keys, backend="engine", descending=descending
        )
        assert list(out) == sorted(keys.tolist(), reverse=descending)
        assert res.counters.summary() == summaries["vectorized"]


class TestTimelineMirroring:
    def test_all_array_backends_emit_identical_step_records(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 100, dc.num_nodes)
        recs = []
        for backend in ARRAY_BACKENDS:
            c = CostCounters(dc.num_nodes)
            tl = TimelineRecorder(num_nodes=dc.num_nodes)
            c.attach_timeline(tl)
            dual_prefix(dc, vals, ADD, backend=backend, counters=c)
            recs.append(tl.steps)
        assert recs[0] == recs[1] == recs[2]
