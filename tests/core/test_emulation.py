"""Tests for the generic hypercube-algorithm emulation (paper conclusion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emulation import (
    emulated_cube_prefix,
    emulated_cube_prefix_vec,
    emulation_comm_steps,
    run_exchange_algorithm_engine,
    run_exchange_algorithm_vec,
)
from repro.core.ops import ADD, CONCAT, MAX
from repro.core.verify import check_prefix
from repro.simulator import CostCounters
from repro.topology import Hypercube, RecursiveDualCube


class TestEmulatedPrefix:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_engine_correct_on_dual_cube(self, n, rng):
        rdc = RecursiveDualCube(n)
        vals = [int(x) for x in rng.integers(0, 100, rdc.num_nodes)]
        t, s, _ = emulated_cube_prefix(rdc, vals, ADD)
        check_prefix(vals, s, ADD)
        assert all(x == sum(vals) for x in t)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_vec_matches_cumsum(self, n, rng):
        rdc = RecursiveDualCube(n)
        vals = rng.integers(0, 100, rdc.num_nodes)
        _, s = emulated_cube_prefix_vec(rdc, vals, ADD)
        assert list(s) == list(np.cumsum(vals))

    def test_non_commutative(self, rng):
        rdc = RecursiveDualCube(2)
        vals = np.empty(8, dtype=object)
        vals[:] = [(int(x),) for x in rng.integers(0, 9, 8)]
        _, s = emulated_cube_prefix_vec(rdc, vals, CONCAT)
        check_prefix(list(vals), s, CONCAT)

    def test_diminished(self, rng):
        rdc = RecursiveDualCube(2)
        vals = rng.integers(0, 50, 8)
        _, s = emulated_cube_prefix_vec(rdc, vals, ADD, inclusive=False)
        assert list(s) == [0] + list(np.cumsum(vals[:-1]))

    def test_on_plain_hypercube_costs_q(self, rng):
        cube = Hypercube(4)
        vals = [int(x) for x in rng.integers(0, 100, 16)]
        _, s, res = emulated_cube_prefix(cube, vals, ADD)
        check_prefix(vals, s, ADD)
        assert res.comm_steps == 4  # all dimensions direct

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_emulation_cost_is_6n_minus_5(self, n, rng):
        """dim 0 direct + 3 cycles for each of the other 2n-2 dims."""
        rdc = RecursiveDualCube(n)
        vals = [int(x) for x in rng.integers(0, 100, rdc.num_nodes)]
        _, _, res = emulated_cube_prefix(rdc, vals, ADD)
        assert res.comm_steps == 6 * n - 5
        c = CostCounters(rdc.num_nodes)
        emulated_cube_prefix_vec(rdc, np.array(vals), ADD, counters=c)
        assert c.comm_steps == 6 * n - 5

    def test_cluster_technique_beats_emulation(self):
        """The paper's closing argument: designed inter-cluster
        communication (2n) vs generic emulation (6n-5)."""
        from repro.analysis.complexity import dual_prefix_comm_exact

        for n in range(2, 10):
            assert dual_prefix_comm_exact(n) < 6 * n - 5

    def test_rejects_bad_sizes(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            emulated_cube_prefix_vec(rdc, np.arange(7), ADD)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=32, max_size=32))
    def test_property_matches_dual_prefix_result_order(self, vals):
        """Emulated prefix scans in recursive-address order (by definition)."""
        rdc = RecursiveDualCube(3)
        _, s = emulated_cube_prefix_vec(rdc, np.array(vals), ADD)
        assert list(s) == list(np.cumsum(vals))


class TestGenericExecutor:
    def test_custom_allreduce_style_rounds(self, rng):
        """A user-written exchange algorithm: running max over all nodes."""
        rdc = RecursiveDualCube(2)
        vals = [int(x) for x in rng.integers(0, 1000, 8)]
        rounds = [
            (d, lambda st: st, lambda st, got, rank: max(st, got))
            for d in range(3)
        ]
        finals, res = run_exchange_algorithm_engine(rdc, vals, rounds)
        assert finals == [max(vals)] * 8
        assert res.comm_steps == 1 + 3 + 3  # dim 0 direct, dims 1-2 relayed

    def test_vec_executor_matches_engine(self, rng):
        rdc = RecursiveDualCube(2)
        vals = rng.integers(0, 1000, 8)
        rounds_vec = [
            (
                d,
                lambda st: st,
                lambda st, got, idx: np.maximum(st, got),
            )
            for d in range(3)
        ]
        c = CostCounters(8)
        out = run_exchange_algorithm_vec(rdc, vals, rounds_vec, counters=c)
        assert list(out) == [vals.max()] * 8
        assert c.comm_steps == 7

    def test_executor_validates_length(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            run_exchange_algorithm_engine(rdc, [1, 2, 3], [])

    def test_emulation_comm_steps_formula(self):
        rdc = RecursiveDualCube(3)
        assert emulation_comm_steps(rdc, [0]) == 1
        assert emulation_comm_steps(rdc, [1, 2, 3, 4]) == 12
        cube = Hypercube(4)
        assert emulation_comm_steps(cube, range(4)) == 4
