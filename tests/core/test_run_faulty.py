"""Fault-tolerant execution of the paper's algorithms (``run_faulty``).

The acceptance bar from the robustness campaign: at n=3 (32 nodes),
``dual_prefix`` and ``dual_sort`` must complete with correct output under
*every* single-node fault (all 2^(2n-1) choices except rank 0, where the
degraded collective roots) in degraded mode, and under seeded
message-drop plans with retry enabled.
"""

import pytest

from repro.core import ADD, MAX, run_faulty, sequential_prefix
from repro.core.run_faulty import FaultyRunResult
from repro.simulator import FaultPlan
from repro.topology import DualCube, FaultSet, RecursiveDualCube


def _surviving_prefix_ok(data, res, op):
    """Degraded-prefix contract: scan over surviving inputs, input order."""
    survivors = [data[k] for k in range(len(data)) if res.values[k] is not None]
    got = [v for v in res.values if v is not None]
    assert got == sequential_prefix(survivors, op)


def _surviving_sort_ok(keys, res):
    """Degraded-sort contract: surviving keys sorted onto healthy addresses."""
    got = [res.values[r] for r in res.healthy]
    assert got == sorted(keys[r] for r in res.healthy)


class TestDegradedPrefixExhaustive:
    def test_every_single_node_fault_n3(self):
        dc = DualCube(3)
        data = [(i * 13) % 97 for i in range(dc.num_nodes)]
        for f in range(1, dc.num_nodes):
            res = run_faulty(
                "prefix", dc, data, faults=FaultSet(nodes=[f]), mode="degraded"
            )
            assert res.excluded == (f,)
            assert len(res.healthy) == dc.num_nodes - 1
            _surviving_prefix_ok(data, res, ADD)

    def test_single_link_faults_exclude_nobody(self):
        dc = DualCube(3)
        data = list(range(dc.num_nodes))
        for u in range(0, dc.num_nodes, 5):
            v = dc.neighbors(u)[0]
            res = run_faulty(
                "prefix", dc, data,
                faults=FaultSet(links=[(u, v)]), mode="degraded",
            )
            assert res.excluded == ()  # n-connected: one link never splits it
            assert list(res.values) == sequential_prefix(data, ADD)

    def test_max_tolerated_node_faults(self):
        # D_3 is 3-connected: any 2 node faults leave the rest connected.
        dc = DualCube(3)
        data = list(range(dc.num_nodes))
        for pair in [(1, 2), (5, 20), (7, 31), (15, 16)]:
            res = run_faulty(
                "prefix", dc, data, faults=FaultSet(nodes=pair), mode="degraded"
            )
            assert res.excluded == tuple(sorted(pair))
            _surviving_prefix_ok(data, res, ADD)

    def test_non_commutative_op_order(self):
        dc = DualCube(2)
        data = [f"c{i}" for i in range(dc.num_nodes)]
        from repro.core.ops import AssocOp
        strcat = AssocOp("strcat", lambda a, b: a + b, "", commutative=False)
        res = run_faulty(
            "prefix", dc, data, op=strcat,
            faults=FaultSet(nodes=[3]), mode="degraded",
        )
        _surviving_prefix_ok(data, res, strcat)


class TestDegradedSortExhaustive:
    def test_every_single_node_fault_n3(self):
        rdc = RecursiveDualCube(3)
        keys = [(i * 17) % 32 for i in range(rdc.num_nodes)]
        for f in range(1, rdc.num_nodes):
            res = run_faulty(
                "sort", rdc, keys, faults=FaultSet(nodes=[f]), mode="degraded"
            )
            assert res.excluded == (f,)
            assert res.values[f] is None
            _surviving_sort_ok(keys, res)

    def test_descending(self):
        rdc = RecursiveDualCube(2)
        keys = [(i * 3) % 8 for i in range(rdc.num_nodes)]
        res = run_faulty(
            "sort", rdc, keys, faults=FaultSet(nodes=[2]),
            mode="degraded", descending=True,
        )
        got = [res.values[r] for r in res.healthy]
        assert got == sorted((keys[r] for r in res.healthy), reverse=True)


class TestReroute:
    def test_reroute_matches_degraded_values(self):
        dc = DualCube(3)
        data = [(i * 7) % 41 for i in range(dc.num_nodes)]
        for faults in [FaultSet(nodes=[9]), FaultSet(nodes=[3, 28]),
                       FaultSet(links=[(0, dc.neighbors(0)[0])])]:
            d = run_faulty("prefix", dc, data, faults=faults, mode="degraded")
            r = run_faulty("prefix", dc, data, faults=faults, mode="reroute")
            assert r.values == d.values
            assert r.excluded == d.excluded

    def test_reroute_sort_on_recursive_presentation(self):
        # RecursiveDualCube has no closed-form distance metric, so reroute
        # falls back to BFS routing; results still match degraded mode.
        rdc = RecursiveDualCube(2)
        keys = [7, 2, 5, 0, 6, 1, 4, 3]
        d = run_faulty("sort", rdc, keys, faults=FaultSet(nodes=[4]), mode="degraded")
        r = run_faulty("sort", rdc, keys, faults=FaultSet(nodes=[4]), mode="reroute")
        assert r.values == d.values

    def test_reroute_serializes_more_steps(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        d = run_faulty("prefix", dc, data, faults=FaultSet(nodes=[5]), mode="degraded")
        r = run_faulty("prefix", dc, data, faults=FaultSet(nodes=[5]), mode="reroute")
        assert r.comm_steps >= d.comm_steps


class TestRetry:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_prefix_under_seeded_drops_equals_fault_free(self, seed):
        dc = DualCube(3)
        data = [(i * 11) % 64 for i in range(dc.num_nodes)]
        plan = FaultPlan(drop_rate=0.05, seed=seed, max_retries=500)
        res = run_faulty("prefix", dc, data, plan=plan, mode="retry")
        assert list(res.values) == sequential_prefix(data, ADD)
        assert res.excluded == ()
        assert res.result.counters.retries == res.result.counters.messages_dropped

    @pytest.mark.parametrize("seed", [1, 7])
    def test_sort_under_seeded_drops_equals_fault_free(self, seed):
        rdc = RecursiveDualCube(3)
        keys = [(i * 23) % 32 for i in range(rdc.num_nodes)]
        plan = FaultPlan(drop_rate=0.05, seed=seed, max_retries=500)
        res = run_faulty("sort", rdc, keys, plan=plan, mode="retry")
        assert list(res.values) == sorted(keys)

    def test_delays_also_recovered(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        plan = FaultPlan(delay_rate=0.3, max_delay=2, seed=4)
        res = run_faulty("prefix", dc, data, op=MAX, plan=plan, mode="retry")
        assert list(res.values) == sequential_prefix(data, MAX)

    def test_retry_rejects_permanent_faults(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        with pytest.raises(ValueError, match="permanent"):
            run_faulty(
                "prefix", dc, data,
                plan=FaultPlan(node_crashes={1: 1}), mode="retry",
            )
        with pytest.raises(ValueError, match="permanent"):
            run_faulty(
                "prefix", dc, data,
                plan=FaultPlan(link_cuts={(0, dc.neighbors(0)[0]): 1}),
                mode="retry",
            )

    def test_retry_requires_a_plan(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="needs a FaultPlan"):
            run_faulty("prefix", dc, list(range(dc.num_nodes)), mode="retry")


class TestInputValidation:
    def test_bad_kind_and_mode(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        with pytest.raises(ValueError, match="kind"):
            run_faulty("scan", dc, data)
        with pytest.raises(ValueError, match="mode"):
            run_faulty("prefix", dc, data, mode="yolo")

    def test_wrong_data_length(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="data items"):
            run_faulty("prefix", dc, [1, 2, 3])

    def test_degraded_rejects_transient_plan(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        with pytest.raises(ValueError, match="retry"):
            run_faulty(
                "prefix", dc, data,
                plan=FaultPlan(drop_rate=0.5), mode="degraded",
            )

    def test_result_shape(self):
        dc = DualCube(2)
        data = list(range(dc.num_nodes))
        res = run_faulty("prefix", dc, data, faults=FaultSet(nodes=[1]))
        assert isinstance(res, FaultyRunResult)
        assert res.mode == "degraded"
        assert res.kind == "prefix"
        assert len(res.values) == dc.num_nodes
        assert set(res.healthy) | set(res.excluded) == set(range(dc.num_nodes))
