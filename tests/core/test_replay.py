"""The replay backend: compiled plans vs the extractor, byte-identical
differential parity against the vectorized backend (results, counters,
timelines), the per-cluster sharded prefix path, and the plan cache's
statistics/metrics surface."""

import numpy as np
import pytest

from repro.analysis.static import extract_schedule
from repro.analysis.static.compile import (
    VALIDATE_MAX_NODES,
    PlanError,
    compile_prefix_plan,
    compile_schedule_plan,
    plan_comm_schedule,
)
from repro.core import (
    ADD,
    CONCAT,
    MAX,
    clear_plan_cache,
    dual_prefix_replay,
    dual_prefix_vec,
    dual_sort_replay,
    dual_sort_vec,
    hypercube_bitonic_sort_replay,
    hypercube_bitonic_sort_vec,
    large_prefix_replay,
    large_prefix_vec,
    large_sort_replay,
    large_sort_vec,
    plan_cache_stats,
    registry_from_plan_cache,
    sequential_prefix,
)
from repro.core.dual_prefix import dual_prefix_program
from repro.core.dual_sort import dual_sort_schedule, schedule_program
from repro.core.replay import get_prefix_plan, get_schedule_plan
from repro.obs import TimelineRecorder, cross_validate_timeline
from repro.simulator import CostCounters, run_spmd
from repro.topology import DualCube, RecursiveDualCube


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test sees an empty plan cache (and leaves none behind)."""
    clear_plan_cache()
    yield
    clear_plan_cache()


def _obj(items):
    out = np.empty(len(items), dtype=object)
    out[:] = list(items)
    return out


class TestCompiledPlans:
    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("paper_literal", [False, True])
    def test_prefix_plan_validates_against_extractor(self, n, paper_literal):
        dc = DualCube(n)
        plan = compile_prefix_plan(dc, paper_literal=paper_literal)
        assert plan.validated is (dc.num_nodes <= VALIDATE_MAX_NODES)
        assert plan.comm_steps == 2 * n + (1 if paper_literal else 0)
        sched = plan_comm_schedule(plan, dc)
        extracted = extract_schedule(
            dc,
            dual_prefix_program(
                dc, _obj(range(dc.num_nodes)), ADD,
                paper_literal=paper_literal,
            ),
        )
        assert sched.steps == extracted.steps
        assert sched.comp_steps == extracted.comp_steps
        key = lambda s: sorted(
            (e.step, e.src, e.dst, e.kind, e.size) for e in s.events
        )
        assert key(sched) == key(extracted)

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_sort_plan_schedule_matches_extractor(self, n, policy):
        rdc = RecursiveDualCube(n)
        schedule = dual_sort_schedule(rdc.n)
        plan = compile_schedule_plan(rdc, schedule, kind="dual_sort")
        assert plan.validated
        sched = plan_comm_schedule(plan, rdc, payload_policy=policy)
        extracted = extract_schedule(
            rdc,
            schedule_program(
                rdc, list(range(rdc.num_nodes)), list(schedule),
                payload_policy=policy,
            ),
        )
        assert sched.steps == extracted.steps
        key = lambda s: sorted(
            (e.step, e.src, e.dst, e.kind, e.size) for e in s.events
        )
        assert key(sched) == key(extracted)

    def test_engine_timeline_matches_plan_schedule(self):
        # The compiled plan's predicted CommSchedule is exactly what a
        # recorded engine run produces, cycle for cycle.
        dc = DualCube(3)
        plan = compile_prefix_plan(dc)
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        run_spmd(
            dc,
            dual_prefix_program(dc, _obj(range(dc.num_nodes)), ADD),
            timeline=t,
        )
        assert cross_validate_timeline(t, plan_comm_schedule(plan, dc)) == []

    def test_engine_timeline_matches_sort_plan_schedule(self):
        rdc = RecursiveDualCube(2)
        schedule = dual_sort_schedule(rdc.n)
        plan = compile_schedule_plan(rdc, schedule, kind="dual_sort")
        t = TimelineRecorder(num_nodes=rdc.num_nodes)
        run_spmd(
            rdc,
            schedule_program(
                rdc, list(range(rdc.num_nodes)), list(schedule)
            ),
            timeline=t,
        )
        assert cross_validate_timeline(t, plan_comm_schedule(plan, rdc)) == []

    def test_validate_false_skips_extraction(self):
        dc = DualCube(2)
        assert compile_prefix_plan(dc, validate=False).validated is False
        plan = compile_schedule_plan(
            RecursiveDualCube(2), dual_sort_schedule(2), kind="dual_sort",
            validate=False,
        )
        assert plan.validated is False

    def test_doctored_plan_fails_validation(self):
        # A plan claiming the paper-literal extra cross step predicts
        # one more communication step than the non-literal program runs.
        from dataclasses import replace

        from repro.analysis.static.compile import _check_against_extraction

        dc = DualCube(2)
        plan = compile_prefix_plan(dc)
        doctored = replace(plan, paper_literal=True,
                           comm_steps=plan.comm_steps + 1)
        with pytest.raises(PlanError, match="step count"):
            _check_against_extraction(
                doctored, dc,
                dual_prefix_program(dc, _obj(range(dc.num_nodes)), ADD),
            )

    def test_plan_comm_schedule_rejects_other_types(self):
        with pytest.raises(TypeError,
                           match="expected PrefixPlan or SchedulePlan"):
            plan_comm_schedule(object(), DualCube(2))


class TestDualPrefixReplay:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_matches_vectorized(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 1000, dc.num_nodes)
        c_vec, c_rep = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        vec = dual_prefix_vec(dc, vals, ADD, counters=c_vec)
        rep = dual_prefix_replay(dc, vals, ADD, counters=c_rep)
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    @pytest.mark.parametrize("inclusive", [True, False])
    @pytest.mark.parametrize("paper_literal", [False, True])
    def test_variants_match(self, inclusive, paper_literal, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 1000, dc.num_nodes)
        c_vec, c_rep = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        vec = dual_prefix_vec(
            dc, vals, ADD, inclusive=inclusive, paper_literal=paper_literal,
            counters=c_vec,
        )
        rep = dual_prefix_replay(
            dc, vals, ADD, inclusive=inclusive, paper_literal=paper_literal,
            counters=c_rep,
        )
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    def test_non_commutative_object_op(self):
        # CONCAT catches any operand-order or dtype slip in the replayed
        # rounds (it is non-commutative and object-dtype).
        dc = DualCube(2)
        vals = _obj([(k,) for k in range(dc.num_nodes)])
        out = dual_prefix_replay(dc, vals, CONCAT)
        assert list(out) == sequential_prefix(list(vals), CONCAT)

    def test_other_ufunc_op(self, rng):
        dc = DualCube(3)
        vals = rng.integers(-500, 500, dc.num_nodes)
        rep = dual_prefix_replay(dc, vals, MAX)
        assert rep.tolist() == np.maximum.accumulate(vals).tolist()

    def test_shape_check(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="expected 8 values"):
            dual_prefix_replay(dc, np.arange(7), ADD)

    def test_timeline_mirrors_vectorized(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 100, dc.num_nodes)
        recs = []
        for fn in (dual_prefix_vec, dual_prefix_replay):
            c = CostCounters(dc.num_nodes)
            tl = TimelineRecorder(num_nodes=dc.num_nodes)
            c.attach_timeline(tl)
            fn(dc, vals, ADD, counters=c)
            recs.append(tl.steps)
        assert recs[0] == recs[1]


class TestShardedReplay:
    @pytest.mark.parametrize("n", [3, 4])
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_matches_unsharded(self, n, shards, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 1000, dc.num_nodes)
        c_vec, c_sh = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        vec = dual_prefix_vec(dc, vals, ADD, counters=c_vec)
        out = dual_prefix_replay(
            dc, vals, ADD, counters=c_sh, shards=shards
        )
        assert out.tolist() == vec.tolist()
        # The cost ledger is data-independent: sharding must not change it.
        assert c_sh.summary() == c_vec.summary()

    def test_exclusive_scan_sharded(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 1000, dc.num_nodes)
        out = dual_prefix_replay(
            dc, vals, ADD, inclusive=False, shards=2
        )
        vec = dual_prefix_vec(dc, vals, ADD, inclusive=False)
        assert out.tolist() == vec.tolist()

    def test_shards_one_is_the_plain_path(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 100, dc.num_nodes)
        out = dual_prefix_replay(dc, vals, ADD, shards=1)
        assert out.tolist() == np.cumsum(vals).tolist()

    def test_shards_validated(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            dual_prefix_replay(dc, np.arange(dc.num_nodes), ADD, shards=0)

    def test_requires_ufunc_op(self):
        dc = DualCube(2)
        vals = _obj(["a"] * dc.num_nodes)
        with pytest.raises(
            ValueError, match="requires an operation with a numpy ufunc"
        ):
            dual_prefix_replay(dc, vals, CONCAT, shards=2)

    def test_requires_numeric_dtype(self):
        dc = DualCube(2)
        vals = _obj(range(dc.num_nodes))
        with pytest.raises(ValueError, match="numeric values only"):
            dual_prefix_replay(dc, vals, ADD, shards=2)


class TestScheduleReplay:
    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_dual_sort_matches_vectorized(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes)
        c_vec, c_rep = CostCounters(rdc.num_nodes), CostCounters(rdc.num_nodes)
        vec = dual_sort_vec(rdc, keys, payload_policy=policy, counters=c_vec)
        rep = dual_sort_replay(
            rdc, keys, payload_policy=policy, counters=c_rep
        )
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    @pytest.mark.parametrize("descending", [False, True])
    def test_descending_and_duplicates(self, descending, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 4, rdc.num_nodes)
        rep = dual_sort_replay(rdc, keys, descending=descending)
        assert rep.tolist() == sorted(keys.tolist(), reverse=descending)

    def test_object_keys_fall_back(self):
        rdc = RecursiveDualCube(2)
        keys = _obj(list(reversed(range(rdc.num_nodes))))
        c_vec, c_rep = CostCounters(rdc.num_nodes), CostCounters(rdc.num_nodes)
        vec = dual_sort_vec(rdc, keys, counters=c_vec)
        rep = dual_sort_replay(rdc, keys, counters=c_rep)
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    @pytest.mark.parametrize("q", [0, 1, 3])
    def test_bitonic_matches_vectorized(self, q, rng):
        keys = rng.permutation(2**q)
        c_vec, c_rep = CostCounters(len(keys)), CostCounters(len(keys))
        vec = hypercube_bitonic_sort_vec(keys, counters=c_vec)
        rep = hypercube_bitonic_sort_replay(keys, counters=c_rep)
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    def test_bitonic_power_of_two_check(self):
        with pytest.raises(
            ValueError, match="key count must be a power of two, got 6"
        ):
            hypercube_bitonic_sort_replay(np.arange(6))


class TestLargeInputReplay:
    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("b", [1, 4])
    def test_large_prefix_matches_vectorized(self, n, b, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 1000, dc.num_nodes * b)
        c_vec, c_rep = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        vec = large_prefix_vec(dc, vals, ADD, counters=c_vec)
        rep = large_prefix_replay(dc, vals, ADD, counters=c_rep)
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    def test_large_prefix_sharded_network_phase(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 1000, dc.num_nodes * 4)
        c_vec, c_rep = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        vec = large_prefix_vec(dc, vals, ADD, counters=c_vec)
        rep = large_prefix_replay(
            dc, vals, ADD, counters=c_rep, shards=2
        )
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_large_sort_matches_vectorized(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes * 4)
        c_vec, c_rep = CostCounters(rdc.num_nodes), CostCounters(rdc.num_nodes)
        vec = large_sort_vec(rdc, keys, payload_policy=policy, counters=c_vec)
        rep = large_sort_replay(
            rdc, keys, payload_policy=policy, counters=c_rep
        )
        assert rep.tolist() == vec.tolist()
        assert c_rep.summary() == c_vec.summary()

    def test_large_sort_profiler_spans(self, rng):
        from repro.obs.profile import PhaseProfiler

        rdc = RecursiveDualCube(2)
        keys = rng.permutation(rdc.num_nodes * 2)
        prof = PhaseProfiler()
        large_sort_replay(rdc, keys, profiler=prof)
        totals = prof.totals()
        assert "local-sort" in totals
        assert len(totals) > 1  # plus the schedule's recursion segments

    def test_large_sort_object_keys_rejected(self):
        rdc = RecursiveDualCube(2)
        keys = _obj(range(rdc.num_nodes * 2))
        with pytest.raises(TypeError, match="numeric keys only"):
            large_sort_replay(rdc, keys)


class TestPlanCache:
    def test_hits_and_misses(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 100, dc.num_nodes)
        assert plan_cache_stats() == {
            "hits": 0, "misses": 0, "compile_seconds": 0.0,
            "validated": 0, "size": 0,
        }
        dual_prefix_replay(dc, vals, ADD)
        s1 = plan_cache_stats()
        assert (s1["hits"], s1["misses"], s1["size"]) == (0, 1, 1)
        assert s1["validated"] == 1
        assert s1["compile_seconds"] > 0
        dual_prefix_replay(dc, vals, ADD)
        s2 = plan_cache_stats()
        assert (s2["hits"], s2["misses"], s2["size"]) == (1, 1, 1)
        # compile time is only spent on misses.
        assert s2["compile_seconds"] == s1["compile_seconds"]

    def test_distinct_keys_compile_separately(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 100, dc.num_nodes)
        dual_prefix_replay(dc, vals, ADD)
        dual_prefix_replay(dc, vals, ADD, paper_literal=True)
        dual_prefix_replay(DualCube(3), np.arange(32), ADD)
        assert plan_cache_stats()["size"] == 3

    def test_payload_policy_shares_one_plan(self, rng):
        # The plan content is policy-independent (the policy only changes
        # runtime counter charging), so both policies hit one cache entry.
        rdc = RecursiveDualCube(2)
        keys = rng.permutation(rdc.num_nodes)
        dual_sort_replay(rdc, keys, payload_policy="packed")
        dual_sort_replay(rdc, keys, payload_policy="single")
        s = plan_cache_stats()
        assert (s["hits"], s["misses"]) == (1, 1)

    def test_clear_resets(self, rng):
        dc = DualCube(2)
        dual_prefix_replay(dc, np.arange(dc.num_nodes), ADD)
        clear_plan_cache()
        assert plan_cache_stats() == {
            "hits": 0, "misses": 0, "compile_seconds": 0.0,
            "validated": 0, "size": 0,
        }

    def test_factory_only_called_on_miss(self):
        rdc = RecursiveDualCube(2)
        calls = []

        def factory():
            calls.append(1)
            return dual_sort_schedule(rdc.n)

        get_schedule_plan(rdc, factory, kind="dual_sort")
        get_schedule_plan(rdc, factory, kind="dual_sort")
        assert len(calls) == 1

    def test_get_prefix_plan_is_cached(self):
        dc = DualCube(2)
        assert get_prefix_plan(dc) is get_prefix_plan(dc)

    def test_metrics_export(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 100, dc.num_nodes)
        dual_prefix_replay(dc, vals, ADD)
        dual_prefix_replay(dc, vals, ADD)
        reg = registry_from_plan_cache()
        text = reg.to_prometheus()
        assert "repro_replay_plan_cache_hits_total 1" in text
        assert "repro_replay_plan_cache_misses_total 1" in text
        assert "repro_replay_plan_cache_validated_total 1" in text
        assert "repro_replay_plan_cache_size 1" in text
        assert "repro_replay_plan_compile_seconds" in text

    def test_metrics_accept_existing_registry_and_labels(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        out = registry_from_plan_cache(
            registry=reg, labels={"suite": "unit"}
        )
        assert out is reg
        assert 'suite="unit"' in reg.to_prometheus()
