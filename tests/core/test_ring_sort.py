"""Tests for odd-even transposition sort on the Hamiltonian ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring_sort import ring_sort_engine, ring_sort_steps, ring_sort_vec
from repro.simulator import CostCounters
from repro.topology import RecursiveDualCube


class TestRingSort:
    @pytest.mark.parametrize("n", [2, 3])
    def test_vec_sorts_permutations(self, n, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes)
        assert list(ring_sort_vec(rdc, keys)) == list(range(rdc.num_nodes))

    @pytest.mark.parametrize("n", [2, 3])
    def test_engine_matches_vec(self, n, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 50, rdc.num_nodes)
        vec = ring_sort_vec(rdc, keys)
        eng, res = ring_sort_engine(rdc, [int(k) for k in keys])
        assert eng == list(vec) == sorted(keys)
        assert res.comm_steps == ring_sort_steps(rdc.num_nodes)

    def test_duplicates_and_negatives(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.integers(-3, 3, 32)
        assert list(ring_sort_vec(rdc, keys)) == sorted(keys)

    def test_already_sorted_and_reversed(self):
        rdc = RecursiveDualCube(2)
        assert list(ring_sort_vec(rdc, np.arange(8))) == list(range(8))
        assert list(ring_sort_vec(rdc, np.arange(7, -1, -1))) == list(range(8))

    def test_step_counts(self, rng):
        rdc = RecursiveDualCube(2)
        c = CostCounters(8)
        ring_sort_vec(rdc, rng.integers(0, 9, 8), counters=c)
        assert c.comm_steps == 8
        assert c.comp_steps == 8

    def test_crossover_against_dual_sort(self):
        """Ring sort wins tiny networks, D_sort wins from n = 4 on."""
        from repro.analysis.complexity import dual_sort_comm_exact

        assert ring_sort_steps(8) < dual_sort_comm_exact(2)  # 8 < 12
        assert ring_sort_steps(32) < dual_sort_comm_exact(3)  # 32 < 35
        assert ring_sort_steps(128) > dual_sort_comm_exact(4)  # 128 > 70
        assert ring_sort_steps(512) > dual_sort_comm_exact(5)

    def test_shape_validation(self):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            ring_sort_vec(rdc, np.arange(7))
        with pytest.raises(ValueError):
            ring_sort_engine(rdc, list(range(9)))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=8, max_size=8))
    def test_property_sorts_anything(self, keys):
        rdc = RecursiveDualCube(2)
        assert list(ring_sort_vec(rdc, np.array(keys))) == sorted(keys)
