"""Tests for the associative-operation algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ops import ADD, CONCAT, MATMUL2, MAX, MIN, MUL, AssocOp, combine_arrays

SMALL_INTS = st.integers(min_value=-50, max_value=50)
MAT = st.tuples(SMALL_INTS, SMALL_INTS, SMALL_INTS, SMALL_INTS)


class TestBuiltins:
    @pytest.mark.parametrize("op", [ADD, MUL, MIN, MAX, CONCAT, MATMUL2])
    def test_identity_is_two_sided(self, op):
        samples = {
            "add": 7,
            "mul": 7,
            "min": 7,
            "max": 7,
            "concat": (1, 2),
            "matmul2": (1, 2, 3, 4),
        }
        x = samples[op.name.split("-")[0]]
        assert op(op.identity, x) == x
        assert op(x, op.identity) == x

    @given(SMALL_INTS, SMALL_INTS, SMALL_INTS)
    def test_add_mul_min_max_associative(self, a, b, c):
        for op in (ADD, MUL, MIN, MAX):
            assert op(op(a, b), c) == op(a, op(b, c))

    @given(MAT, MAT, MAT)
    def test_matmul2_associative(self, a, b, c):
        assert MATMUL2(MATMUL2(a, b), c) == MATMUL2(a, MATMUL2(b, c))

    def test_matmul2_not_commutative(self):
        a, b = (1, 1, 0, 1), (1, 0, 1, 1)
        assert MATMUL2(a, b) != MATMUL2(b, a)

    def test_concat_not_commutative(self):
        assert CONCAT((1,), (2,)) != CONCAT((2,), (1,))

    def test_reduce_folds_left(self):
        assert CONCAT.reduce([(1,), (2,), (3,)]) == (1, 2, 3)
        assert ADD.reduce([]) == 0

    def test_call_applies_fn(self):
        assert ADD(2, 3) == 5
        assert MIN(2, 3) == 2


class TestIdentityArray:
    def test_numeric_ops_give_numeric_arrays(self):
        arr = ADD.identity_array(4)
        assert arr.dtype == np.int64
        assert list(arr) == [0, 0, 0, 0]

    def test_float_identity_gives_float_array(self):
        arr = MIN.identity_array(3)
        assert arr.dtype == np.float64
        assert np.isinf(arr).all()

    def test_object_ops_give_object_arrays(self):
        arr = CONCAT.identity_array(3)
        assert arr.dtype == object
        assert list(arr) == [(), (), ()]


class TestCombineArrays:
    def test_ufunc_path(self):
        a = np.array([1, 2, 3])
        b = np.array([10, 20, 30])
        assert list(combine_arrays(ADD, a, b)) == [11, 22, 33]

    def test_object_path_preserves_order(self):
        a = np.empty(2, dtype=object)
        b = np.empty(2, dtype=object)
        a[:] = [(1,), (2,)]
        b[:] = [(3,), (4,)]
        out = combine_arrays(CONCAT, a, b)
        assert list(out) == [(1, 3), (2, 4)]

    def test_mixed_object_falls_back(self):
        a = np.empty(2, dtype=object)
        a[:] = [(1,), (2,)]
        b = np.empty(2, dtype=object)
        b[:] = [(9,), (8,)]
        out = combine_arrays(CONCAT, a, b)
        assert out.dtype == object


class TestCustomOp:
    def test_custom_op_usable_end_to_end(self):
        from repro import DualCube, dual_prefix

        gcd = AssocOp("gcd", np.gcd, 0, ufunc=np.gcd, commutative=True)
        dc = DualCube(2)
        vals = np.array([12, 18, 24, 6, 9, 27, 36, 48])
        out = dual_prefix(dc, vals, gcd)
        expect = []
        acc = 0
        for v in vals:
            acc = int(np.gcd(acc, v))
            expect.append(acc)
        assert list(out) == expect
