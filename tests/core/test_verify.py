"""Tests for the sequential oracles and checkers."""

import pytest

from repro.core.ops import ADD, CONCAT
from repro.core.verify import (
    check_prefix,
    check_sorted,
    is_permutation_of,
    sequential_prefix,
)


class TestSequentialPrefix:
    def test_inclusive(self):
        assert sequential_prefix([1, 2, 3], ADD) == [1, 3, 6]

    def test_diminished(self):
        assert sequential_prefix([1, 2, 3], ADD, inclusive=False) == [0, 1, 3]

    def test_empty(self):
        assert sequential_prefix([], ADD) == []

    def test_non_commutative_order(self):
        assert sequential_prefix([(1,), (2,)], CONCAT) == [(1,), (1, 2)]


class TestSequentialPrefixEdgeCases:
    def test_single_element_inclusive(self):
        assert sequential_prefix([7], ADD) == [7]

    def test_single_element_diminished(self):
        # The diminished prefix of one element is the identity alone.
        assert sequential_prefix([7], ADD, inclusive=False) == [0]

    def test_empty_diminished(self):
        assert sequential_prefix([], ADD, inclusive=False) == []

    def test_identity_values_inclusive(self):
        assert sequential_prefix([0, 0, 0], ADD) == [0, 0, 0]


class TestCheckPrefix:
    def test_accepts_correct(self):
        check_prefix([1, 2, 3], [1, 3, 6], ADD)

    def test_accepts_empty(self):
        check_prefix([], [], ADD)
        check_prefix([], [], ADD, inclusive=False)

    def test_accepts_single_element(self):
        check_prefix([5], [5], ADD)
        check_prefix([5], [0], ADD, inclusive=False)

    def test_rejects_single_element_mixups(self):
        # Inclusive result offered against a diminished check and vice
        # versa: length 1 is where the two conventions differ most subtly.
        with pytest.raises(AssertionError, match="index 0"):
            check_prefix([5], [5], ADD, inclusive=False)
        with pytest.raises(AssertionError, match="index 0"):
            check_prefix([5], [0], ADD)

    def test_rejects_extra_output(self):
        with pytest.raises(AssertionError, match="length"):
            check_prefix([], [0], ADD)

    def test_rejects_wrong_value(self):
        with pytest.raises(AssertionError, match="index 2"):
            check_prefix([1, 2, 3], [1, 3, 7], ADD)

    def test_rejects_wrong_length(self):
        with pytest.raises(AssertionError, match="length"):
            check_prefix([1, 2], [1], ADD)


class TestCheckSorted:
    def test_accepts_sorted(self):
        check_sorted([1, 2, 2, 3])
        check_sorted([3, 2, 2, 1], descending=True)
        check_sorted([])
        check_sorted([42])

    def test_rejects_unsorted(self):
        with pytest.raises(AssertionError, match="index 1"):
            check_sorted([1, 5, 3])
        with pytest.raises(AssertionError):
            check_sorted([1, 2], descending=True)


class TestIsPermutation:
    def test_positive(self):
        assert is_permutation_of([3, 1, 2], [1, 2, 3])
        assert is_permutation_of([], [])

    def test_negative(self):
        assert not is_permutation_of([1, 1, 2], [1, 2, 2])
        assert not is_permutation_of([1], [1, 1])

    def test_unhashable_elements(self):
        # Multiset equality is sort-based, so unhashable items (lists)
        # work where a Counter/set approach would raise TypeError.
        assert is_permutation_of([[2], [1]], [[1], [2]])
        assert not is_permutation_of([[1], [1]], [[1], [2]])

    def test_mixed_hashable_and_unhashable(self):
        assert is_permutation_of([(1, 2), [3]], [[3], (1, 2)])
        assert not is_permutation_of([(1, 2), [3]], [[3], (1, 3)])
