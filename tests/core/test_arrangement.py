"""Tests for the D_prefix data arrangement (u -> u*)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrangement import arrange, arranged_index, arranged_index_v, dearrange
from repro.topology import DualCube


class TestArrangedIndex:
    def test_class0_nodes_unchanged(self, dc):
        for u in dc.nodes():
            if dc.class_of(u) == 0:
                assert arranged_index(dc, u) == u

    def test_class1_nodes_swap_fields(self):
        dc = DualCube(3)
        u = dc.compose(1, 0b10, 0b01)
        # u = (1, node=01, cluster=10); u* = (1, 10, 01) read as plain bits.
        assert arranged_index(dc, u) == 0b1_10_01

    def test_is_an_involution(self, dc):
        for u in dc.nodes():
            assert arranged_index(dc, arranged_index(dc, u)) == u

    def test_is_a_bijection(self, dc):
        images = [arranged_index(dc, u) for u in dc.nodes()]
        assert sorted(images) == list(dc.nodes())

    def test_vectorized_matches_scalar(self, dc):
        got = arranged_index_v(dc)
        assert list(got) == [arranged_index(dc, u) for u in dc.nodes()]

    def test_consecutive_indices_within_every_cluster(self, dc):
        """The property the algorithm needs (paper Section 3)."""
        for cls in (0, 1):
            for k in range(dc.clusters_per_class):
                members = dc.cluster_members(cls, k)
                held = sorted(arranged_index(dc, u) for u in members)
                assert held == list(range(held[0], held[0] + len(members)))

    def test_class_halves(self, dc):
        half = dc.num_nodes // 2
        for u in dc.nodes():
            if dc.class_of(u) == 0:
                assert arranged_index(dc, u) < half
            else:
                assert arranged_index(dc, u) >= half

    def test_node_id_order_within_cluster(self):
        dc = DualCube(3)
        for cls in (0, 1):
            for k in range(dc.clusters_per_class):
                members = dc.cluster_members(cls, k)  # ordered by node ID
                held = [arranged_index(dc, u) for u in members]
                assert held == sorted(held)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6))
    def test_bijection_any_n(self, n):
        dc = DualCube(n)
        idx = arranged_index_v(dc)
        assert len(np.unique(idx)) == dc.num_nodes


class TestArrangeDearrange:
    def test_roundtrip(self, dc, rng):
        vals = rng.integers(0, 100, dc.num_nodes)
        assert list(dearrange(dc, arrange(dc, vals))) == list(vals)
        assert list(arrange(dc, dearrange(dc, vals))) == list(vals)

    def test_arrange_places_global_index(self, dc):
        vals = np.arange(dc.num_nodes)
        held = arrange(dc, vals)
        for u in dc.nodes():
            assert held[u] == arranged_index(dc, u)

    def test_shape_validation(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            arrange(dc, np.arange(7))
        with pytest.raises(ValueError):
            dearrange(dc, np.arange(9))
