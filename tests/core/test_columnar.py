"""Columnar backend: view primitives, differential parity vs both other
backends (under both engine matchers), static-schedule step parity,
memory scaling, and the backend dispatchers."""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ADD,
    CONCAT,
    MATMUL2,
    dual_prefix,
    dual_prefix_vec,
    dual_sort,
    dual_sort_vec,
    large_prefix,
    large_sort,
    sequential_prefix,
)
from repro.core.columnar import (
    dual_prefix_columnar,
    dual_sort_columnar,
    execute_schedule_columnar,
    large_prefix_columnar,
    large_sort_columnar,
)
from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_program
from repro.core.dual_sort import (
    dual_sort_engine,
    dual_sort_schedule,
    schedule_program,
)
from repro.obs.timeline import TimelineRecorder
from repro.simulator import (
    ColumnarState,
    CostCounters,
    bit_pair_views,
    dir_bit_views,
    swap_halves,
    use_matching,
)
from repro.topology import DualCube, RecursiveDualCube


def _obj(items):
    out = np.empty(len(items), dtype=object)
    out[:] = list(items)
    return out


class TestColumnarState:
    def test_columns_are_views(self):
        st_ = ColumnarState(8, [("t", np.int64), ("s", np.int64)])
        t = st_.column("t")
        t[:] = np.arange(8)
        assert np.array_equal(st_.column("t"), np.arange(8))
        assert st_.columns() == ("t", "s")
        assert st_.nbytes == 8 * 16

    def test_subarray_field(self):
        st_ = ColumnarState(4, [("block", np.int64, (3,))])
        assert st_.column("block").shape == (4, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ColumnarState(0, [("t", np.int64)])
        with pytest.raises(ValueError, match="at least one field"):
            ColumnarState(4, [])


class TestPairViews:
    @pytest.mark.parametrize("b", [0, 1, 2, 3])
    def test_matches_partner_indexing(self, b, rng):
        col = rng.integers(0, 100, 16)
        lo, hi = bit_pair_views(col, b)
        idx = np.arange(16)
        assert np.array_equal(lo.reshape(-1), col[idx[(idx >> b) & 1 == 0]])
        assert np.array_equal(hi.reshape(-1), col[idx[(idx >> b) & 1 == 1]])

    def test_views_write_through(self):
        col = np.zeros(8, dtype=np.int64)
        lo, hi = bit_pair_views(col, 1)
        hi[...] = 7
        assert np.array_equal(col, [0, 0, 7, 7, 0, 0, 7, 7])

    def test_object_column_and_half_slice(self):
        st_ = ColumnarState(8, [("t", object)])
        col = st_.column("t")
        col[:] = [(i,) for i in range(8)]
        lo, hi = bit_pair_views(col[4:], 0)
        lo[0, 0] = (99,)
        lo[1, 0] = (98,)
        assert col[4] == (99,) and col[6] == (98,)

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            bit_pair_views(np.zeros(8), 3)

    @pytest.mark.parametrize("dir_bit,dim", [(1, 0), (2, 0), (2, 1), (3, 1)])
    def test_dir_bit_views_match_masks(self, dir_bit, dim, rng):
        col = rng.integers(0, 100, 16)
        asc_lo, asc_hi, desc_lo, desc_hi = dir_bit_views(col, dir_bit, dim)
        idx = np.arange(16)
        for view, want_dir, want_dim in (
            (asc_lo, 0, 0), (asc_hi, 0, 1), (desc_lo, 1, 0), (desc_hi, 1, 1)
        ):
            sel = ((idx >> dir_bit) & 1 == want_dir) & ((idx >> dim) & 1 == want_dim)
            assert sorted(view.reshape(-1)) == sorted(col[sel])

    def test_dir_bit_must_exceed_dim(self):
        with pytest.raises(ValueError, match="must exceed"):
            dir_bit_views(np.zeros(16), 1, 1)

    def test_swap_halves(self):
        src = np.arange(8)
        out = np.empty(8, dtype=src.dtype)
        swap_halves(src, out)
        assert np.array_equal(out, [4, 5, 6, 7, 0, 1, 2, 3])
        with pytest.raises(ValueError, match="shape mismatch"):
            swap_halves(src, np.empty(4, dtype=src.dtype))


@pytest.mark.parametrize("n", [2, 3, 4])
class TestPrefixDifferential:
    def test_vs_vectorized_all_variants(self, n, rng):
        dc = DualCube(n)
        for op, vals in (
            (ADD, rng.integers(0, 1000, dc.num_nodes)),
            (CONCAT, _obj([(int(x),) for x in rng.integers(0, 99, dc.num_nodes)])),
            (MATMUL2, _obj([
                tuple(int(v) for v in rng.integers(-2, 3, 4))
                for _ in range(dc.num_nodes)
            ])),
        ):
            for inclusive in (True, False):
                for paper_literal in (False, True):
                    cv = CostCounters(dc.num_nodes)
                    cc = CostCounters(dc.num_nodes)
                    a = dual_prefix_vec(
                        dc, vals, op, inclusive=inclusive,
                        paper_literal=paper_literal, counters=cv,
                    )
                    b = dual_prefix_columnar(
                        dc, vals, op, inclusive=inclusive,
                        paper_literal=paper_literal, counters=cc,
                    )
                    assert list(a) == list(b)
                    assert cv.summary() == cc.summary()
                    assert np.array_equal(cv._comp_calls, cc._comp_calls)
                    assert np.array_equal(cv._comp_ops, cc._comp_ops)

    @pytest.mark.parametrize("matching", ["indexed", "legacy"])
    def test_vs_engine_both_matchers(self, n, matching, rng):
        dc = DualCube(n)
        vals = _obj([(int(x),) for x in rng.integers(0, 99, dc.num_nodes)])
        for inclusive in (True, False):
            cc = CostCounters(dc.num_nodes)
            got = dual_prefix_columnar(
                dc, vals, CONCAT, inclusive=inclusive, counters=cc
            )
            with use_matching(matching):
                want, res = dual_prefix_engine(
                    dc, vals, CONCAT, inclusive=inclusive
                )
            assert list(got) == list(want)
            e = res.counters
            assert cc.comm_steps == e.comm_steps
            assert cc.comp_steps == e.comp_steps
            assert cc.messages == e.messages
            assert cc.payload_items == e.payload_items
            assert cc.max_message_payload == e.max_message_payload


@pytest.mark.parametrize("n", [2, 3, 4])
@pytest.mark.parametrize("policy", ["packed", "single"])
class TestSortDifferential:
    def test_vs_vectorized(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 999, rdc.num_nodes)
        for descending in (False, True):
            cv = CostCounters(rdc.num_nodes)
            cc = CostCounters(rdc.num_nodes)
            a = dual_sort_vec(
                rdc, keys, descending=descending,
                payload_policy=policy, counters=cv,
            )
            b = dual_sort_columnar(
                rdc, keys, descending=descending,
                payload_policy=policy, counters=cc,
            )
            assert np.array_equal(a, b)
            assert cv.summary() == cc.summary()

    @pytest.mark.parametrize("matching", ["indexed", "legacy"])
    def test_vs_engine_both_matchers(self, n, policy, matching, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 999, rdc.num_nodes)
        cc = CostCounters(rdc.num_nodes)
        got = dual_sort_columnar(rdc, keys, payload_policy=policy, counters=cc)
        with use_matching(matching):
            want, res = dual_sort_engine(
                rdc, [int(k) for k in keys], payload_policy=policy
            )
        assert list(got) == want
        e = res.counters
        assert cc.comm_steps == e.comm_steps
        assert cc.comp_steps == e.comp_steps
        assert cc.messages == e.messages
        assert cc.payload_items == e.payload_items


@pytest.mark.parametrize("n", [2, 3, 4, 5])
class TestStaticScheduleParity:
    """Columnar comm step counts equal the static analyzer's extraction."""

    def test_prefix_steps(self, n, rng):
        from repro.analysis.static.extract import extract_schedule

        dc = DualCube(n)
        vals = [int(v) for v in rng.integers(0, 100, dc.num_nodes)]
        c = CostCounters(dc.num_nodes)
        dual_prefix_columnar(dc, np.asarray(vals), ADD, counters=c)
        static = extract_schedule(dc, dual_prefix_program(dc, vals, ADD))
        assert c.comm_steps == static.steps

    def test_sort_steps(self, n, rng):
        from repro.analysis.static.extract import extract_schedule

        rdc = RecursiveDualCube(n)
        keys = [int(k) for k in rng.permutation(rdc.num_nodes)]
        c = CostCounters(rdc.num_nodes)
        dual_sort_columnar(rdc, np.asarray(keys), counters=c)
        static = extract_schedule(
            rdc, schedule_program(rdc, keys, dual_sort_schedule(rdc.n))
        )
        assert c.comm_steps == static.steps


class TestLargeVariants:
    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("block", [1, 2, 3, 8])
    def test_large_prefix_parity(self, n, block, rng):
        dc = DualCube(n)
        vals = rng.integers(0, 100, dc.num_nodes * block)
        cv, cc = CostCounters(dc.num_nodes), CostCounters(dc.num_nodes)
        a = large_prefix(dc, vals, ADD, counters=cv)
        b = large_prefix_columnar(dc, vals, ADD, counters=cc)
        assert np.array_equal(a, b)
        assert cv.summary() == cc.summary()

    def test_large_prefix_concat_objects(self, rng):
        dc = DualCube(2)
        vals = _obj([(i,) for i in range(dc.num_nodes * 3)])
        a = large_prefix(dc, vals, CONCAT)
        b = large_prefix_columnar(dc, vals, CONCAT)
        assert list(a) == list(b)
        assert b[-1] == tuple(range(dc.num_nodes * 3))

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("block", [1, 2, 3, 8])
    @pytest.mark.parametrize("descending", [False, True])
    def test_large_sort_parity(self, n, block, descending, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.permutation(rdc.num_nodes * block)
        cv, cc = CostCounters(rdc.num_nodes), CostCounters(rdc.num_nodes)
        a = large_sort(rdc, keys, descending=descending, counters=cv)
        b = large_sort_columnar(rdc, keys, descending=descending, counters=cc)
        assert np.array_equal(a, b)
        assert cv.summary() == cc.summary()

    def test_large_sort_rejects_objects(self):
        rdc = RecursiveDualCube(2)
        keys = _obj([(i,) for i in range(rdc.num_nodes)])
        with pytest.raises(TypeError, match="numeric"):
            large_sort_columnar(rdc, keys)


class TestDispatchers:
    def test_prefix_backend_flag(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 100, dc.num_nodes)
        assert np.array_equal(
            dual_prefix(dc, vals, ADD, backend="columnar"),
            dual_prefix(dc, vals, ADD, backend="vectorized"),
        )

    def test_sort_backend_flag(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.permutation(rdc.num_nodes)
        assert np.array_equal(
            dual_sort(rdc, keys, backend="columnar"), np.sort(keys)
        )

    def test_large_backend_flags(self, rng):
        dc, rdc = DualCube(2), RecursiveDualCube(2)
        vals = rng.integers(0, 100, dc.num_nodes * 4)
        assert np.array_equal(
            large_prefix(dc, vals, ADD, backend="columnar"),
            large_prefix(dc, vals, ADD),
        )
        assert np.array_equal(
            large_sort(rdc, vals, backend="columnar"), np.sort(vals)
        )

    def test_columnar_rejects_trace(self):
        from repro.simulator import TraceRecorder

        dc = DualCube(2)
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            dual_prefix(
                dc, np.zeros(dc.num_nodes), ADD, backend="columnar",
                trace=TraceRecorder(),
            )
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError, match="no per-rank values to trace"):
            dual_sort(
                rdc, np.zeros(rdc.num_nodes), backend="columnar",
                trace=TraceRecorder(),
            )

    def test_unknown_backend_names_columnar(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match="columnar"):
            dual_prefix(dc, np.zeros(dc.num_nodes), ADD, backend="nope")
        with pytest.raises(ValueError, match="columnar"):
            large_prefix(dc, np.zeros(dc.num_nodes), ADD, backend="nope")

    def test_class_bit_guard(self):
        class TopBitless(DualCube):
            @property
            def class_dimension(self):
                return 0

        with pytest.raises(ValueError, match="top address bit"):
            dual_prefix_columnar(TopBitless(2), np.zeros(8), ADD)

    def test_degenerate_schedule_step_rejected(self):
        from repro.core.dual_sort import ScheduleStep

        rdc = RecursiveDualCube(2)
        bad = [ScheduleStep(dim=1, dir_kind="bit", dir_val=1, phase="x")]
        with pytest.raises(ValueError, match="degenerate"):
            execute_schedule_columnar(rdc, np.zeros(rdc.num_nodes), bad)


@given(data=st.data(), n=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_property_prefix_matches_sequential_oracle(data, n):
    dc = DualCube(n)
    vals = np.asarray(
        data.draw(
            st.lists(
                st.integers(min_value=-(10**6), max_value=10**6),
                min_size=dc.num_nodes,
                max_size=dc.num_nodes,
            )
        )
    )
    got = dual_prefix_columnar(dc, vals, ADD)
    assert list(got) == sequential_prefix(list(vals), ADD)
    sorted_keys = dual_sort_columnar(RecursiveDualCube(n), vals)
    assert np.array_equal(sorted_keys, np.sort(vals))


class TestMemoryScaling:
    def test_prefix_memory_is_o_nodes(self):
        """Peak heap stays within a small constant times the node count."""
        dc = DualCube(8)  # 32768 nodes
        vals = np.arange(dc.num_nodes, dtype=np.int64)
        tracemalloc.start()
        try:
            dual_prefix_columnar(dc, vals, ADD)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 4 int64 state columns + arrangement permutation + output =
        # ~48 B/node; 200 B/node plus fixed slack leaves generous headroom
        # while still catching any O(nodes * rounds) or edge-list blowup.
        assert peak < 200 * dc.num_nodes + 4 * 1024 * 1024


class TestTimelineMirroring:
    def test_columnar_emits_same_step_records_as_vec(self, rng):
        dc = DualCube(3)
        vals = rng.integers(0, 100, dc.num_nodes)
        recs = []
        for fn in (dual_prefix_vec, dual_prefix_columnar):
            c = CostCounters(dc.num_nodes)
            tl = TimelineRecorder(num_nodes=dc.num_nodes)
            c.attach_timeline(tl)
            fn(dc, vals, ADD, counters=c)
            recs.append(tl.steps)
        assert recs[0] == recs[1]
        assert any(s.kind == "comm" for s in recs[1])
        assert any(s.kind == "comp" for s in recs[1])
