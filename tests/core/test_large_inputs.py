"""Tests for the N > P extensions (paper future-work item 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_sort_comm_exact,
)
from repro.core.large_inputs import large_prefix, large_sort
from repro.core.ops import ADD, CONCAT, MAX
from repro.simulator import CostCounters
from repro.topology import DualCube, RecursiveDualCube


class TestLargePrefix:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_matches_cumsum(self, n, b, rng):
        dc = DualCube(n)
        vals = rng.integers(-50, 50, b * dc.num_nodes)
        assert list(large_prefix(dc, vals, ADD)) == list(np.cumsum(vals))

    def test_running_max(self, rng):
        dc = DualCube(2)
        vals = rng.integers(0, 1000, 4 * 8)
        got = large_prefix(dc, vals, MAX)
        assert list(got) == list(np.maximum.accumulate(vals))

    def test_non_commutative(self, rng):
        dc = DualCube(2)
        vals = np.empty(3 * 8, dtype=object)
        vals[:] = [(int(x),) for x in rng.integers(0, 9, 24)]
        got = large_prefix(dc, vals, CONCAT)
        acc = ()
        for k, v in enumerate(vals):
            acc = acc + v
            assert got[k] == acc

    def test_object_payloads_preserved_without_coercion(self):
        """Pins the behaviour the removed ``astype(object)`` branch guarded:
        a copy of an object-dtype input is already object dtype, results
        stay tuples, and the caller's array is never mutated."""
        dc = DualCube(2)
        vals = np.empty(2 * 8, dtype=object)
        vals[:] = [(k,) for k in range(16)]
        before = list(vals)
        got = large_prefix(dc, vals, CONCAT)
        assert got.dtype == object
        assert got[-1] == tuple(range(16))
        assert all(isinstance(v, tuple) for v in got)
        assert list(vals) == before

    @pytest.mark.parametrize("b", [1, 4, 16])
    def test_network_steps_independent_of_block_size(self, b, rng):
        dc = DualCube(3)
        c = CostCounters(dc.num_nodes)
        large_prefix(dc, rng.integers(0, 10, b * 32), ADD, counters=c)
        assert c.comm_steps == dual_prefix_comm_exact(3)

    def test_local_work_scales_with_block(self, rng):
        dc = DualCube(2)
        c1 = CostCounters(8)
        large_prefix(dc, rng.integers(0, 10, 8 * 8), ADD, counters=c1)
        c2 = CostCounters(8)
        large_prefix(dc, rng.integers(0, 10, 2 * 8), ADD, counters=c2)
        assert c1.max_node_ops > c2.max_node_ops

    def test_b_equals_one_matches_plain(self, rng):
        from repro.core.dual_prefix import dual_prefix_vec

        dc = DualCube(2)
        vals = rng.integers(0, 100, 8)
        assert list(large_prefix(dc, vals, ADD)) == list(
            dual_prefix_vec(dc, vals, ADD)
        )

    def test_rejects_non_multiple(self):
        dc = DualCube(2)
        with pytest.raises(ValueError):
            large_prefix(dc, np.arange(9), ADD)
        with pytest.raises(ValueError):
            large_prefix(dc, np.array([]), ADD)


class TestLargeSort:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_sorts(self, n, b, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 10_000, b * rdc.num_nodes)
        assert list(large_sort(rdc, keys)) == sorted(keys)

    def test_descending(self, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 100, 4 * 8)
        assert list(large_sort(rdc, keys, descending=True)) == sorted(
            keys, reverse=True
        )

    def test_duplicates_and_negatives(self, rng):
        rdc = RecursiveDualCube(3)
        keys = rng.integers(-5, 5, 2 * 32)
        assert list(large_sort(rdc, keys)) == sorted(keys)

    def test_floats(self, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.normal(size=4 * 8)
        assert list(large_sort(rdc, keys)) == sorted(keys)

    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_network_steps_match_plain_sort(self, policy, rng):
        rdc = RecursiveDualCube(3)
        c = CostCounters(32)
        large_sort(rdc, rng.integers(0, 100, 8 * 32), counters=c, payload_policy=policy)
        assert c.comm_steps == dual_sort_comm_exact(3, payload_policy=policy)

    def test_payload_scales_with_block(self, rng):
        rdc = RecursiveDualCube(2)
        c1 = CostCounters(8)
        large_sort(rdc, rng.integers(0, 100, 8), counters=c1)
        c4 = CostCounters(8)
        large_sort(rdc, rng.integers(0, 100, 4 * 8), counters=c4)
        assert c4.payload_items == 4 * c1.payload_items
        assert c4.max_message_payload == 4 * c1.max_message_payload

    def test_rejects_object_keys(self):
        rdc = RecursiveDualCube(1)
        bad = np.empty(4, dtype=object)
        bad[:] = ["a", "b", "c", "d"]
        with pytest.raises(TypeError):
            large_sort(rdc, bad)

    def test_rejects_bad_shapes_and_policy(self, rng):
        rdc = RecursiveDualCube(2)
        with pytest.raises(ValueError):
            large_sort(rdc, np.arange(9))
        with pytest.raises(ValueError):
            large_sort(rdc, np.arange(8), payload_policy="osmosis")

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=16, max_size=16))
    def test_property_blocked_sort_n1(self, keys):
        rdc = RecursiveDualCube(1)  # 2 nodes, blocks of 8
        assert list(large_sort(rdc, np.array(keys))) == sorted(keys)


class TestLargePrefixEngine:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("b", [1, 2, 4])
    def test_matches_cumsum(self, n, b, rng):
        from repro.core.large_inputs import large_prefix_engine

        dc = DualCube(n)
        vals = rng.integers(0, 100, b * dc.num_nodes)
        out, res = large_prefix_engine(dc, vals.astype(object), ADD)
        assert list(out) == list(np.cumsum(vals))
        assert res.comm_steps == dual_prefix_comm_exact(n)

    def test_parity_with_vectorized_counters(self, rng):
        from repro.core.large_inputs import large_prefix_engine

        dc = DualCube(2)
        vals = rng.integers(0, 100, 4 * 8)
        out, res = large_prefix_engine(dc, vals.astype(object), ADD)
        c = CostCounters(8)
        vec = large_prefix(dc, vals, ADD, counters=c)
        assert list(out) == list(vec)
        assert res.comm_steps == c.comm_steps
        assert res.comp_steps == c.comp_steps
        assert res.counters.messages == c.messages

    def test_non_commutative(self, rng):
        from repro.core.large_inputs import large_prefix_engine

        dc = DualCube(2)
        vals = np.empty(2 * 8, dtype=object)
        vals[:] = [(int(x),) for x in rng.integers(0, 9, 16)]
        out, _ = large_prefix_engine(dc, vals, CONCAT)
        acc = ()
        for k, v in enumerate(vals):
            acc = acc + v
            assert out[k] == acc


class TestBlockedValidationMessages:
    """Regression: the length error must interpolate len(arr), not arr.shape."""

    def test_non_multiple_message_shows_length(self):
        dc = DualCube(2)  # 8 nodes
        with pytest.raises(
            ValueError,
            match=r"input length 9 must be a positive multiple of the "
            r"network size 8",
        ):
            large_prefix(dc, np.arange(9), ADD)

    def test_empty_message_shows_length(self):
        dc = DualCube(2)
        with pytest.raises(ValueError, match=r"input length 0 must be"):
            large_prefix(dc, np.array([]), ADD)

    def test_multidimensional_input_names_shape(self):
        dc = DualCube(2)
        with pytest.raises(
            ValueError, match=r"expected a flat 1-D input, got shape \(2, 4\)"
        ):
            large_prefix(dc, np.zeros((2, 4)), ADD)


class TestLocalSortCost:
    """Regression: local-sort comp cost uses ceil(log2 B), not floor."""

    def test_ceil_log2_values(self):
        from repro.core.large_inputs import _local_sort_ops

        # b * ceil(log2 b), clamped to >= 1 comparison.
        assert _local_sort_ops(1) == 1
        assert _local_sort_ops(2) == 2
        assert _local_sort_ops(3) == 6  # floor would give 3
        assert _local_sort_ops(4) == 8
        assert _local_sort_ops(5) == 15  # floor would give 10
        assert _local_sort_ops(8) == 24

    def test_counters_pin_b3(self, rng):
        # n=2: 2n^2 - n = 6 merge-split rounds at 2B = 6 ops each, plus
        # the local sort's B * ceil(log2 B) = 6 (floor(log2 3) = 1 would
        # have charged only 3).
        rdc = RecursiveDualCube(2)
        keys = rng.permutation(3 * rdc.num_nodes)
        c = CostCounters(rdc.num_nodes)
        out = large_sort(rdc, keys, counters=c)
        assert list(out) == sorted(keys)
        assert c.max_node_ops == 6 + 6 * 6
        assert c.comp_steps == 1 + 6
