"""Tests for Algorithm 1 — Cube_prefix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cube_prefix import cube_prefix, cube_prefix_vec
from repro.core.ops import ADD, CONCAT, MATMUL2, MAX, MIN
from repro.core.verify import check_prefix, sequential_prefix
from repro.simulator import CostCounters
from repro.topology import Hypercube


def tuples_of(n, rng):
    out = np.empty(n, dtype=object)
    out[:] = [(int(x),) for x in rng.integers(0, 100, n)]
    return out


class TestEngineCorrectness:
    @pytest.mark.parametrize("q", range(5))
    def test_inclusive_prefix_add(self, q, rng):
        vals = [int(x) for x in rng.integers(0, 100, 1 << q)]
        t, s, res = cube_prefix(Hypercube(q), vals, ADD)
        check_prefix(vals, s, ADD)
        assert all(x == sum(vals) for x in t)

    @pytest.mark.parametrize("q", range(5))
    def test_diminished_prefix_add(self, q, rng):
        vals = [int(x) for x in rng.integers(0, 100, 1 << q)]
        _, s, _ = cube_prefix(Hypercube(q), vals, ADD, inclusive=False)
        check_prefix(vals, s, ADD, inclusive=False)

    @pytest.mark.parametrize("q", range(4))
    def test_non_commutative_concat(self, q, rng):
        vals = list(tuples_of(1 << q, rng))
        _, s, _ = cube_prefix(Hypercube(q), vals, CONCAT)
        check_prefix(vals, s, CONCAT)

    def test_non_commutative_matmul(self, rng):
        vals = [tuple(int(x) for x in rng.integers(-3, 4, 4)) for _ in range(16)]
        _, s, _ = cube_prefix(Hypercube(4), vals, MATMUL2)
        check_prefix(vals, s, MATMUL2)

    def test_min_max(self, rng):
        vals = [int(x) for x in rng.integers(-100, 100, 16)]
        _, smin, _ = cube_prefix(Hypercube(4), vals, MIN)
        _, smax, _ = cube_prefix(Hypercube(4), vals, MAX)
        assert smin == [min(vals[: k + 1]) for k in range(16)]
        assert smax == [max(vals[: k + 1]) for k in range(16)]

    def test_value_count_validated(self):
        with pytest.raises(ValueError):
            cube_prefix(Hypercube(2), [1, 2, 3], ADD)


class TestEngineCosts:
    @pytest.mark.parametrize("q", range(5))
    def test_theorem_costs_q_steps(self, q, rng):
        vals = [int(x) for x in rng.integers(0, 10, 1 << q)]
        _, _, res = cube_prefix(Hypercube(q), vals, ADD)
        assert res.comm_steps == q
        assert res.comp_steps == q
        assert res.counters.messages == q * (1 << q)

    def test_every_node_busy_every_cycle(self, rng):
        _, _, res = cube_prefix(Hypercube(3), list(range(8)), ADD)
        assert all(res.counters.sends == 3)
        assert all(res.counters.recvs == 3)


class TestVectorized:
    @pytest.mark.parametrize("q", range(6))
    def test_matches_cumsum(self, q, rng):
        vals = rng.integers(0, 100, 1 << q)
        t, s = cube_prefix_vec(vals, ADD)
        assert list(s) == list(np.cumsum(vals))
        assert all(t == vals.sum())

    @pytest.mark.parametrize("q", range(5))
    def test_matches_engine_for_objects(self, q, rng):
        vals = tuples_of(1 << q, rng)
        tv, sv = cube_prefix_vec(vals, CONCAT)
        te, se, _ = cube_prefix(Hypercube(q), list(vals), CONCAT)
        assert list(sv) == se
        assert list(tv) == te

    def test_diminished(self, rng):
        vals = rng.integers(0, 100, 16)
        _, s = cube_prefix_vec(vals, ADD, inclusive=False)
        assert list(s) == [0] + list(np.cumsum(vals[:-1]))

    def test_counters_match_engine(self, rng):
        vals = rng.integers(0, 10, 16)
        c = CostCounters(16)
        cube_prefix_vec(vals, ADD, counters=c)
        _, _, res = cube_prefix(Hypercube(4), [int(v) for v in vals], ADD)
        assert c.comm_steps == res.comm_steps
        assert c.comp_steps == res.comp_steps
        assert c.messages == res.counters.messages

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            cube_prefix_vec(np.arange(6), ADD)
        with pytest.raises(ValueError):
            cube_prefix_vec(np.array([]), ADD)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=16,
            max_size=16,
        )
    )
    def test_prefix_matches_oracle(self, vals):
        _, s = cube_prefix_vec(np.array(vals, dtype=np.int64), ADD)
        assert list(s) == sequential_prefix(vals, ADD)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9)), min_size=8, max_size=8
        )
    )
    def test_concat_scan_reconstructs_input_order(self, vals):
        arr = np.empty(8, dtype=object)
        arr[:] = vals
        _, s = cube_prefix_vec(arr, CONCAT)
        assert s[-1] == CONCAT.reduce(vals)
        for k in range(8):
            assert s[k] == CONCAT.reduce(vals[: k + 1])
