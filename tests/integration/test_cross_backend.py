"""Cross-backend integration: the cycle-accurate engine and the vectorized
backend must agree bit-for-bit on results *and* on every cost counter, for
every algorithm, at every size tested."""

import numpy as np
import pytest

from repro import (
    ADD,
    CONCAT,
    DualCube,
    RecursiveDualCube,
)
from repro.core.bitonic import hypercube_bitonic_sort, hypercube_bitonic_sort_vec
from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_vec
from repro.core.dual_sort import dual_sort_engine, dual_sort_vec
from repro.routing import allreduce_engine, allreduce_vec
from repro.simulator import CostCounters


def _counters_agree(vec_counters, engine_result):
    e = engine_result.counters
    assert vec_counters.comm_steps == e.comm_steps
    assert vec_counters.comp_steps == e.comp_steps
    assert vec_counters.messages == e.messages
    assert vec_counters.payload_items == e.payload_items
    assert vec_counters.max_message_payload == e.max_message_payload


@pytest.mark.parametrize("n", [1, 2, 3])
class TestPrefixParity:
    def test_results_and_counters(self, n, rng):
        dc = DualCube(n)
        vals = np.empty(dc.num_nodes, dtype=object)
        vals[:] = [(int(x),) for x in rng.integers(0, 99, dc.num_nodes)]
        for paper_literal in (False, True):
            for inclusive in (True, False):
                pre_e, res = dual_prefix_engine(
                    dc, vals, CONCAT, inclusive=inclusive, paper_literal=paper_literal
                )
                c = CostCounters(dc.num_nodes)
                pre_v = dual_prefix_vec(
                    dc,
                    vals,
                    CONCAT,
                    inclusive=inclusive,
                    paper_literal=paper_literal,
                    counters=c,
                )
                assert list(pre_e) == list(pre_v)
                _counters_agree(c, res)


@pytest.mark.parametrize("n", [1, 2, 3])
@pytest.mark.parametrize("policy", ["packed", "single"])
class TestSortParity:
    def test_results_and_counters(self, n, policy, rng):
        rdc = RecursiveDualCube(n)
        keys = rng.integers(0, 999, rdc.num_nodes)
        for descending in (False, True):
            out_e, res = dual_sort_engine(
                rdc,
                [int(k) for k in keys],
                descending=descending,
                payload_policy=policy,
            )
            c = CostCounters(rdc.num_nodes)
            out_v = dual_sort_vec(
                rdc, keys, descending=descending, payload_policy=policy, counters=c
            )
            assert out_e == list(out_v)
            _counters_agree(c, res)


@pytest.mark.parametrize("q", [1, 2, 3, 4])
class TestHypercubeSortParity:
    def test_results_and_counters(self, q, rng):
        keys = rng.integers(0, 999, 1 << q)
        out_e, res = hypercube_bitonic_sort(
            [int(k) for k in keys], backend="engine"
        )
        c = CostCounters(1 << q)
        out_v = hypercube_bitonic_sort_vec(keys, counters=c)
        assert out_e == list(out_v)
        _counters_agree(c, res)


@pytest.mark.parametrize("n", [1, 2, 3])
class TestAllreduceParity:
    def test_results_agree(self, n, rng):
        dc = DualCube(n)
        vals = rng.integers(-50, 50, dc.num_nodes)
        tot_e, res = allreduce_engine(dc, [int(v) for v in vals], ADD)
        vec = allreduce_vec(dc, vals, ADD)
        assert tot_e == list(vec)
        assert res.comm_steps == 2 * n


class TestEndToEndPipelines:
    """Multi-algorithm pipelines exercising the public API together."""

    def test_sort_then_prefix(self, rng):
        # Sort keys, then prefix-sum the sorted sequence: the classic
        # cumulative-distribution pipeline.
        rdc = RecursiveDualCube(3)
        dc = DualCube(3)
        keys = rng.integers(0, 100, 32)
        s = dual_sort_vec(rdc, keys)
        cdf = dual_prefix_vec(dc, s, ADD)
        assert list(cdf) == list(np.cumsum(sorted(keys)))

    def test_prefix_of_broadcast_constant(self, rng):
        from repro.routing import broadcast_engine

        dc = DualCube(2)
        got, _ = broadcast_engine(dc, 3, 7)
        pre = dual_prefix_vec(dc, np.array(got), ADD)
        assert list(pre) == [7 * (k + 1) for k in range(8)]

    def test_counters_accumulate_across_calls(self, rng):
        dc = DualCube(2)
        c = CostCounters(8)
        dual_prefix_vec(dc, rng.integers(0, 9, 8), ADD, counters=c)
        first = c.comm_steps
        dual_prefix_vec(dc, rng.integers(0, 9, 8), ADD, counters=c)
        assert c.comm_steps == 2 * first
