"""Integration: traffic experiments over degraded (faulty) networks."""

import numpy as np
import pytest

from repro.routing.fault_tolerant import ft_route
from repro.simulator.traffic import random_pairs, run_traffic
from repro.topology import DualCube, FaultSet, FaultyTopology


class TestFaultyTraffic:
    def test_traffic_routes_around_faults(self, rng):
        dc = DualCube(3)
        fs = FaultSet.random(dc, 2, 0, rng)
        ft = FaultyTopology(dc, fs)
        healthy = ft.healthy_nodes()
        pairs = []
        while len(pairs) < 200:
            u, v = rng.choice(healthy, 2, replace=False)
            pairs.append((int(u), int(v)))
        stats = run_traffic(ft, lambda u, v: ft_route(ft, u, v), pairs)
        assert stats.num_pairs == 200
        # Degraded network: average hops at or above the fault-free value.
        fault_free = run_traffic(
            dc,
            lambda u, v: ft_route(FaultyTopology(dc, FaultSet()), u, v),
            pairs,
        )
        assert stats.avg_hops >= fault_free.avg_hops

    def test_link_loss_shifts_load_to_survivors(self, rng):
        dc = DualCube(2)  # the 8-cycle: removing one link makes a line
        u, v = 0, dc.neighbors(0)[0]
        ft = FaultyTopology(dc, FaultSet(links=[(u, v)]))
        pairs = random_pairs(8, 400, rng)
        degraded = run_traffic(ft, lambda a, b: ft_route(ft, a, b), pairs)
        healthy = run_traffic(
            dc, lambda a, b: ft_route(FaultyTopology(dc, FaultSet()), a, b), pairs
        )
        assert degraded.max_link_load > healthy.max_link_load
        assert degraded.loaded_links == 7  # one link dead

    def test_traffic_rejects_paths_through_faults(self):
        """run_traffic validates against the *faulty* view, so a router
        ignoring faults is caught."""
        dc = DualCube(2)
        u, v = 0, dc.neighbors(0)[0]
        ft = FaultyTopology(dc, FaultSet(links=[(u, v)]))
        from repro.routing import route

        with pytest.raises(ValueError, match="non-edge"):
            run_traffic(ft, lambda a, b: route(dc, a, b), [(u, v)])
