"""Integration tests regenerating the paper's worked examples (Figs. 3-6)."""

import numpy as np

from repro import (
    ADD,
    DualCube,
    RecursiveDualCube,
    TraceRecorder,
    dual_sort_schedule,
)
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.dual_sort import dual_sort_vec


class TestFigure3PrefixWalkthrough:
    """Prefix sum on D_3 with 32 values, panels (a)-(f)."""

    def setup_method(self):
        self.dc = DualCube(3)
        self.trace = TraceRecorder()
        self.values = np.arange(1, 33)
        self.result = dual_prefix_vec(self.dc, self.values, ADD, trace=self.trace)

    def test_final_result_is_prefix_sums(self):
        assert list(self.result) == [k * (k + 1) // 2 for k in range(1, 33)]

    def test_panel_a_is_arranged_input(self):
        held = self.trace.snapshot("(a) input", 32)
        from repro.core.arrangement import arranged_index

        for u in self.dc.nodes():
            assert held[u] == self.values[arranged_index(self.dc, u)]

    def test_panel_b_cluster_prefixes(self):
        s = self.trace.snapshot("(b) cluster prefix s", 32)
        t = self.trace.snapshot("(b) cluster total t", 32)
        from repro.core.arrangement import arranged_index

        for cls in (0, 1):
            for k in range(4):
                members = self.dc.cluster_members(cls, k)
                block = [self.values[arranged_index(self.dc, u)] for u in members]
                assert [t[u] for u in members] == [sum(block)] * 4
                assert [s[u] for u in members] == list(np.cumsum(block))

    def test_panel_c_totals_crossed(self):
        t = self.trace.snapshot("(b) cluster total t", 32)
        temp = self.trace.snapshot("(c) cross total temp", 32)
        for u in self.dc.nodes():
            assert temp[u] == t[self.dc.cross_partner(u)]

    def test_panel_d_half_totals(self):
        t2 = self.trace.snapshot("(d) half total t'", 32)
        first_half = sum(range(1, 17))
        second_half = sum(range(17, 33))
        for u in self.dc.nodes():
            expected = first_half if self.dc.class_of(u) == 1 else second_half
            assert t2[u] == expected

    def test_panel_f_matches_final(self):
        final = self.trace.snapshot("(f) final prefix", 32)
        from repro.core.arrangement import arranged_index

        for u in self.dc.nodes():
            assert final[u] == self.result[arranged_index(self.dc, u)]

    def test_all_six_panels_present_in_order(self):
        tags = [lbl[:3] for lbl in self.trace.labels()]
        assert tags == ["(a)", "(b)", "(b)", "(c)", "(d)", "(d)", "(e)", "(f)"]


class TestFigures5And6SortWalkthrough:
    """Bitonic sort on D_3: generate bitonic sequence, then sort it."""

    def setup_method(self):
        self.rdc = RecursiveDualCube(3)
        rng = np.random.default_rng(2008)  # venue year as the fixed seed
        self.keys = rng.permutation(32)
        self.trace = TraceRecorder()
        self.sorted = dual_sort_vec(self.rdc, self.keys, trace=self.trace)

    def _state_after(self, label_fragment: str, which: int = -1):
        labels = [l for l in self.trace.labels() if label_fragment in l]
        return np.array(self.trace.snapshot(labels[which], 32))

    def test_final_sorted(self):
        assert list(self.sorted) == list(range(32))

    def test_figure5_bitonic_sequence_before_final_merge(self):
        """After the half-merge of D_3 the whole sequence is bitonic, with
        the lower half ascending and the upper half descending."""
        from repro.core.bitonic import is_bitonic

        state = self._state_after("half-merge D_3")
        assert list(state[:16]) == sorted(state[:16])
        assert list(state[16:]) == sorted(state[16:], reverse=True)
        assert is_bitonic(list(state))

    def test_four_subcubes_sorted_alternately_after_recursion(self):
        """Figure 5's first stage: D^00 asc, D^01 desc, D^10 asc, D^11 desc."""
        # The recursive sorts end right before the first half-merge D_3 step.
        labels = list(self.trace.labels())
        first_hm3 = next(i for i, l in enumerate(labels) if "half-merge D_3" in l)
        state = np.array(self.trace.snapshot(labels[first_hm3 - 1], 32))
        for copy in range(4):
            block = list(state[copy * 8 : (copy + 1) * 8])
            if copy % 2 == 0:
                assert block == sorted(block), copy
            else:
                assert block == sorted(block, reverse=True), copy

    def test_figure6_final_merge_progresses_monotonically(self):
        """Each final-merge step reduces displacement until fully sorted."""
        labels = [l for l in self.trace.labels() if "full-merge D_3" in l]
        target = np.arange(32)
        disps = []
        for lbl in labels:
            state = np.array(self.trace.snapshot(lbl, 32))
            disps.append(int(np.abs(state - target).sum()))
        assert disps[-1] == 0
        assert all(a >= b for a, b in zip(disps, disps[1:]))

    def test_step_count_matches_schedule(self):
        assert len(self.trace.labels()) == 1 + len(dual_sort_schedule(3))

    def test_permutation_preserved_at_every_step(self):
        for lbl in self.trace.labels():
            state = self.trace.snapshot(lbl, 32)
            assert sorted(state) == list(range(32))


class TestFigure12Structure:
    """Figures 1-2: the D_2 and D_3 networks themselves."""

    def test_d2_shape(self):
        dc = DualCube(2)
        assert dc.num_nodes == 8
        assert len(list(dc.edges())) == 8
        assert all(dc.degree(u) == 2 for u in dc.nodes())

    def test_d3_shape(self):
        dc = DualCube(3)
        assert dc.num_nodes == 32
        assert len(list(dc.edges())) == 48
        assert dc.clusters_per_class == 4

    def test_d3_class_structure(self):
        dc = DualCube(3)
        class0 = [u for u in dc.nodes() if dc.class_of(u) == 0]
        class1 = [u for u in dc.nodes() if dc.class_of(u) == 1]
        assert len(class0) == len(class1) == 16


class TestFigure4RecursiveConstruction:
    """Figure 4: D_2 and D_3 built from four D_1 / D_2 plus joining links."""

    def test_d1_is_k2_base(self):
        r = RecursiveDualCube(1)
        assert r.num_nodes == 2 and r.has_edge(0, 1)

    def test_d2_from_four_d1(self):
        r = RecursiveDualCube(2)
        # 4 copies contribute 4 edges; joining links contribute the rest.
        joining = r.joining_edges()
        assert len(list(r.edges())) == 4 * 1 + len(joining)
        assert len(joining) == 4

    def test_d3_from_four_d2(self):
        r = RecursiveDualCube(3)
        joining = r.joining_edges()
        sub_edges = len(list(RecursiveDualCube(2).edges()))
        assert len(list(r.edges())) == 4 * sub_edges + len(joining)
        assert len(joining) == 16
