"""Integration tests for the 3-hop emulation under the 1-port model (E8).

These analyze the engine's raw message log to verify, independently of the
counters, that the claimed schedules are physically consistent: every
message rides an existing link, no node exceeds one send/one receive per
cycle, and the relayed exchanges complete in 3 cycles (packed) / 4 cycles
(single).
"""

from collections import Counter

import numpy as np
import pytest

from repro.core.dual_sort import ScheduleStep, execute_schedule_engine
from repro.topology import RecursiveDualCube


def run_single_step(n, dim, policy):
    rdc = RecursiveDualCube(n)
    rng = np.random.default_rng(dim)
    keys = [int(k) for k in rng.integers(0, 100, rdc.num_nodes)]
    step = [ScheduleStep(dim, "const", 0)]
    from repro.simulator import Engine

    eng = Engine(rdc, _program_factory(rdc, keys, step, policy), log_messages=True)
    return rdc, keys, eng.run()


def _program_factory(rdc, keys, schedule, policy):
    from repro.core.dual_sort import _compare_exchange_program

    def program(ctx):
        key = keys[ctx.rank]
        for step in schedule:
            key = yield from _compare_exchange_program(ctx, rdc, step, key, policy)
        return key

    return program


class TestPortDiscipline:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_one_send_one_recv_per_cycle(self, dim, policy):
        rdc, _, res = run_single_step(3, dim, policy)
        per_cycle_src = Counter((m.cycle, m.src) for m in res.message_log)
        per_cycle_dst = Counter((m.cycle, m.dst) for m in res.message_log)
        assert all(v == 1 for v in per_cycle_src.values())
        assert all(v == 1 for v in per_cycle_dst.values())

    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    def test_messages_ride_existing_links_only(self, dim):
        rdc, _, res = run_single_step(3, dim, "packed")
        for m in res.message_log:
            assert rdc.has_edge(m.src, m.dst), (m.src, m.dst)


class TestStepCycleCounts:
    def test_dimension_zero_is_one_cycle(self):
        _, _, res = run_single_step(3, 0, "packed")
        assert res.comm_steps == 1

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_higher_dims_are_three_cycles_packed(self, dim):
        _, _, res = run_single_step(3, dim, "packed")
        assert res.comm_steps == 3

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_higher_dims_are_four_cycles_single(self, dim):
        _, _, res = run_single_step(3, dim, "single")
        assert res.comm_steps == 4

    @pytest.mark.parametrize("dim", [1, 2])
    def test_packed_middle_hop_carries_two_keys(self, dim):
        _, _, res = run_single_step(3, dim, "packed")
        from repro.simulator import Packed

        sizes = Counter(
            len(m.payload) if isinstance(m.payload, Packed) else 1
            for m in res.message_log
        )
        half = 16
        assert sizes[2] == half  # middle-hop pair messages
        assert sizes[1] == 2 * half  # cross-edge relay in/out

    @pytest.mark.parametrize("dim", [1, 2])
    def test_single_policy_messages_all_one_key(self, dim):
        from repro.simulator import Packed

        _, _, res = run_single_step(3, dim, "single")
        assert all(not isinstance(m.payload, Packed) for m in res.message_log)


class TestExchangeSemantics:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("policy", ["packed", "single"])
    def test_every_pair_compares_correctly(self, dim, policy):
        rdc, keys, res = run_single_step(3, dim, policy)
        for u in rdc.nodes():
            v = u ^ (1 << dim)
            lo, hi = sorted((keys[u], keys[v]))
            expected = lo if (u >> dim) & 1 == 0 else hi  # ascending
            assert res.returns[u] == expected, (u, dim)

    def test_relay_traffic_flows_through_cross_edges(self):
        rdc, _, res = run_single_step(2, 1, "packed")
        # dim 1 is odd -> class-1 nodes have links, class-0 are relayedthrough cross.
        first_cycle = [m for m in res.message_log if m.cycle == 1]
        for m in first_cycle:
            assert m.src ^ m.dst == 1  # all cycle-1 messages are cross-edge
            assert m.src & 1 == 0  # from unsupported (class 0 at odd dim)
