"""Metamorphic and algebraic invariants across the whole library.

These tests do not check outputs against oracles; they check *relations
between runs* — the style of testing that catches subtle systematic
errors (off-by-one block boundaries, direction flips, mis-scaled
counters) that pointwise oracles can miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ADD,
    DualCube,
    Hypercube,
    MAX,
    RecursiveDualCube,
)
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.dual_sort import dual_sort_vec
from repro.core.large_inputs import large_prefix, large_sort
from repro.simulator import CostCounters


class TestPrefixAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), min_size=32, max_size=32),
        st.lists(st.integers(-100, 100), min_size=32, max_size=32),
    )
    def test_additivity(self, a, b):
        """scan(a + b) == scan(a) + scan(b) for the linear ADD scan."""
        dc = DualCube(3)
        av, bv = np.array(a), np.array(b)
        lhs = dual_prefix_vec(dc, av + bv, ADD)
        rhs = dual_prefix_vec(dc, av, ADD) + dual_prefix_vec(dc, bv, ADD)
        assert list(lhs) == list(rhs)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=32, max_size=32), st.integers(-50, 50))
    def test_constant_shift(self, a, c):
        """scan(a + c) == scan(a) + c * (k+1) elementwise."""
        dc = DualCube(3)
        av = np.array(a)
        lhs = dual_prefix_vec(dc, av + c, ADD)
        rhs = dual_prefix_vec(dc, av, ADD) + c * np.arange(1, 33)
        assert list(lhs) == list(rhs)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=32, max_size=32))
    def test_max_scan_monotone_and_dominating(self, a):
        dc = DualCube(3)
        out = dual_prefix_vec(dc, np.array(a), MAX)
        assert all(x <= y for x, y in zip(out, out[1:]))
        assert all(o >= v for o, v in zip(out, a))

    def test_inclusive_minus_diminished_is_input(self, rng):
        dc = DualCube(3)
        vals = rng.integers(-100, 100, 32)
        inc = dual_prefix_vec(dc, vals, ADD)
        dim = dual_prefix_vec(dc, vals, ADD, inclusive=False)
        assert list(inc - dim) == list(vals)


class TestSortAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(st.permutations(list(range(32))))
    def test_permutation_invariance(self, perm):
        """Sorting any permutation of fixed keys gives the same output."""
        rdc = RecursiveDualCube(3)
        out = dual_sort_vec(rdc, np.array(perm))
        assert list(out) == list(range(32))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    def test_idempotence(self, keys):
        rdc = RecursiveDualCube(3)
        once = dual_sort_vec(rdc, np.array(keys))
        twice = dual_sort_vec(rdc, once)
        assert list(once) == list(twice)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    def test_ascending_is_reverse_of_descending(self, keys):
        rdc = RecursiveDualCube(3)
        asc = dual_sort_vec(rdc, np.array(keys))
        desc = dual_sort_vec(rdc, np.array(keys), descending=True)
        assert list(asc) == list(desc[::-1])

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-500, 500), min_size=32, max_size=32), st.integers(1, 100))
    def test_affine_equivariance(self, keys, scale):
        """sort(scale * k + 7) == scale * sort(k) + 7 for scale > 0."""
        rdc = RecursiveDualCube(3)
        kv = np.array(keys)
        lhs = dual_sort_vec(rdc, scale * kv + 7)
        rhs = scale * dual_sort_vec(rdc, kv) + 7
        assert list(lhs) == list(rhs)

    def test_negation_antisymmetry(self, rng):
        """sort(-k) == -reverse(sort(k))."""
        rdc = RecursiveDualCube(3)
        keys = rng.integers(-100, 100, 32)
        lhs = dual_sort_vec(rdc, -keys)
        rhs = -dual_sort_vec(rdc, keys)[::-1]
        assert list(lhs) == list(rhs)


class TestBlockedConsistency:
    @pytest.mark.parametrize("b", [2, 4])
    def test_large_prefix_restriction_to_boundaries(self, b, rng):
        """The blocked prefix agrees with the unblocked one at block ends."""
        dc = DualCube(2)
        vals = rng.integers(0, 100, b * 8)
        big = large_prefix(dc, vals, ADD)
        totals = vals.reshape(8, b).sum(axis=1)
        small = dual_prefix_vec(dc, totals, ADD)
        assert list(big[b - 1 :: b]) == list(small)

    @pytest.mark.parametrize("b", [2, 4])
    def test_large_sort_blocks_are_sorted_slices(self, b, rng):
        rdc = RecursiveDualCube(2)
        keys = rng.integers(0, 1000, b * 8)
        out = large_sort(rdc, keys)
        full = sorted(keys)
        for k in range(8):
            assert list(out[k * b : (k + 1) * b]) == full[k * b : (k + 1) * b]


class TestCostScaling:
    def test_prefix_steps_grow_by_two_per_n(self, rng):
        prev = None
        for n in (1, 2, 3, 4, 5):
            dc = DualCube(n)
            c = CostCounters(dc.num_nodes)
            dual_prefix_vec(dc, rng.integers(0, 9, dc.num_nodes), ADD, counters=c)
            if prev is not None:
                assert c.comm_steps - prev == 2
            prev = c.comm_steps

    def test_sort_step_deltas_match_recurrence(self, rng):
        """T(n) - T(n-1) = 3(4n-3) - 4 (the engine-exact recurrence)."""
        prev = None
        for n in (1, 2, 3, 4):
            rdc = RecursiveDualCube(n)
            c = CostCounters(rdc.num_nodes)
            dual_sort_vec(rdc, rng.integers(0, 9, rdc.num_nodes), counters=c)
            if prev is not None:
                assert c.comm_steps - prev == 3 * (4 * n - 3) - 4
            prev = c.comm_steps

    def test_message_totals_scale_with_nodes(self, rng):
        """Prefix message count = V * comm_steps (every node active)."""
        for n in (2, 3, 4):
            dc = DualCube(n)
            c = CostCounters(dc.num_nodes)
            dual_prefix_vec(dc, rng.integers(0, 9, dc.num_nodes), ADD, counters=c)
            assert c.messages == dc.num_nodes * c.comm_steps


class TestTopologyHandshakes:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: Hypercube(4),
            lambda: DualCube(3),
            lambda: RecursiveDualCube(3),
        ],
    )
    def test_handshake_lemma(self, topo_factory):
        topo = topo_factory()
        assert sum(topo.degree(u) for u in topo.nodes()) == 2 * len(list(topo.edges()))

    def test_dualcube_vertex_transitivity_spotcheck(self):
        """XOR translation by any address is an automorphism of Q_q; for
        the dual-cube, translation within the same class pattern is."""
        dc = DualCube(3)
        # XOR by a class-preserving offset (class bit 0) maps edges to edges
        # when the offset keeps fields aligned: any offset with class bit 0.
        for offset in (0b00101, 0b01010, 0b01111):
            for u, v in dc.edges():
                assert dc.has_edge(u ^ offset, v ^ offset), (offset, u, v)
