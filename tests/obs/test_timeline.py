"""TimelineRecorder unit semantics (no engine involved)."""

import pytest

from repro.obs import (
    CycleAggregate,
    FaultEvent,
    LinkEvent,
    TimelineRecorder,
    cross_validate_timeline,
)


class TestEvents:
    def test_record_message_keeps_order_and_fields(self):
        t = TimelineRecorder()
        t.record_message(1, 0, 4, size=2, kind="sendrecv")
        t.record_message(1, 4, 0)
        (a, b) = t.events
        assert a == LinkEvent(1, 0, 4, 2, "sendrecv")
        assert b.size == 1 and b.kind == "send"
        assert a.link == b.link == (0, 4)

    def test_bulk_load_preserves_per_cycle_resolution(self):
        t = TimelineRecorder()
        t.bulk_load_messages(
            [(1, 0, 1, 1, "send"), (3, 1, 0, 1, "send"), (1, 2, 3, 1, "send")]
        )
        aggs = t.cycle_aggregates()
        assert [a.messages for a in aggs] == [2, 0, 1]

    def test_fault_kind_validated(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultEvent(1, "meltdown")
        t = TimelineRecorder()
        with pytest.raises(ValueError, match="fault kind"):
            t.record_fault(1, "meltdown")

    def test_fault_counts(self):
        t = TimelineRecorder()
        t.record_fault(1, "drop", rank=0, src=0, dst=1)
        t.record_fault(2, "drop", rank=3)
        t.record_fault(5, "crash", rank=1)
        assert t.fault_counts() == {
            "drop": 2, "timeout": 0, "crash": 1, "leave": 0, "join": 0,
        }

    def test_bad_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TimelineRecorder(num_nodes=0)


class TestCycles:
    def test_set_cycles_is_monotonic_max(self):
        t = TimelineRecorder()
        t.set_cycles(5)
        t.set_cycles(3)
        assert t.num_cycles == 5
        with pytest.raises(ValueError, match="non-negative"):
            t.set_cycles(-1)

    def test_num_cycles_covers_trailing_idle_and_late_faults(self):
        t = TimelineRecorder()
        t.record_message(2, 0, 1)
        assert t.num_cycles == 2
        t.record_fault(4, "timeout", rank=0)
        assert t.num_cycles == 4
        t.set_cycles(7)  # engine ran 3 more idle cycles
        assert t.num_cycles == 7

    def test_cycle_aggregates_include_idle_cycles(self):
        t = TimelineRecorder()
        t.record_message(1, 0, 1, size=3)
        t.record_fault(2, "drop", rank=0)
        t.set_cycles(4)
        aggs = t.cycle_aggregates()
        assert len(aggs) == 4
        assert aggs[0] == CycleAggregate(
            cycle=1, messages=1, payload_items=3, link_loads={(0, 1): 1}
        )
        assert aggs[1].drops == 1 and aggs[1].faults == 1
        assert aggs[3].messages == 0 and aggs[3].faults == 0


class TestVectorizedSteps:
    def test_comm_steps_number_themselves_and_extend_cycles(self):
        t = TimelineRecorder()
        t.record_comm_step(8, 16, 2)
        t.record_comp_step(ops_each=4)
        t.record_comm_step(4)
        assert [s.step for s in t.steps] == [1, 1, 2]
        assert [s.kind for s in t.steps] == ["comm", "comp", "comm"]
        assert t.num_cycles == 2
        assert t.total_messages == 12
        # Coarse rounds fold into the per-cycle aggregates.
        aggs = t.cycle_aggregates()
        assert aggs[0].messages == 8 and aggs[0].payload_items == 16
        assert aggs[1].messages == 4 and aggs[1].payload_items == 4

    def test_payload_items_default_to_one_per_message(self):
        t = TimelineRecorder()
        t.record_comm_step(5)
        assert t.steps[0].payload_items == 5


class TestViews:
    def test_link_loads_and_utilization_grid(self):
        t = TimelineRecorder(num_nodes=4)
        t.record_message(1, 0, 1)
        t.record_message(1, 1, 0)
        t.record_message(3, 2, 3)
        links, grid = t.link_utilization()
        assert links == [(0, 1), (2, 3)]
        assert grid == [[2, 0, 0], [0, 0, 1]]
        assert t.link_loads() == {(0, 1): 2, (2, 3): 1}

    def test_to_comm_schedule_roundtrip(self):
        t = TimelineRecorder(num_nodes=4)
        t.record_message(1, 0, 1, size=2, kind="sendrecv")
        t.set_cycles(2)
        sched = t.to_comm_schedule()
        assert sched.num_nodes == 4
        assert sched.steps == 2
        (e,) = sched.events
        assert (e.step, e.src, e.dst, e.kind, e.size) == (1, 0, 1, "sendrecv", 2)

    def test_to_comm_schedule_infers_num_nodes(self):
        t = TimelineRecorder()
        t.record_message(1, 0, 5)
        assert t.to_comm_schedule().num_nodes == 6


class TestCrossValidate:
    def _recorder(self):
        t = TimelineRecorder(num_nodes=2)
        t.record_message(1, 0, 1, size=1, kind="send")
        t.set_cycles(1)
        return t

    def test_identical_timelines_validate(self):
        t = self._recorder()
        assert cross_validate_timeline(t, t.to_comm_schedule()) == []

    def test_cycle_count_mismatch_reported(self):
        t = self._recorder()
        other = self._recorder()
        other.set_cycles(3)
        problems = cross_validate_timeline(t, other.to_comm_schedule())
        assert any("cycle count" in p for p in problems)

    def test_event_mismatch_reported_both_ways(self):
        t = self._recorder()
        other = self._recorder()
        other.record_message(1, 1, 0)
        problems = cross_validate_timeline(t, other.to_comm_schedule())
        assert any("absent from the timeline" in p for p in problems)
        problems = cross_validate_timeline(other, t.to_comm_schedule())
        assert any("absent from the static schedule" in p for p in problems)

    def test_check_kinds_false_relaxes_kind_only_diffs(self):
        a = self._recorder()
        b = TimelineRecorder(num_nodes=2)
        b.record_message(1, 0, 1, size=1, kind="shift")
        b.set_cycles(1)
        assert cross_validate_timeline(a, b.to_comm_schedule()) != []
        assert cross_validate_timeline(
            a, b.to_comm_schedule(), check_kinds=False
        ) == []
