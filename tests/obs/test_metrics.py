"""Metrics registry semantics and byte-exact exporter goldens."""

import json
import math

import pytest

from repro.core.dual_prefix import dual_prefix_engine
from repro.core.ops import ADD
from repro.obs import (
    Histogram,
    MetricsRegistry,
    TimelineRecorder,
    registry_from_counters,
    registry_from_timeline,
)
from repro.simulator import use_timeline
from repro.topology import DualCube


def _small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_messages", "Messages delivered", {"algo": "prefix"}
    ).inc(5)
    reg.gauge("repro_depth").set(3.5)
    h = reg.histogram("repro_sizes", "Payload sizes", buckets=(1, 2))
    for v in (1, 2, 3.5):
        h.observe(v)
    return reg


class TestInstruments:
    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(-3)
        assert g.value == 7

    def test_histogram_cumulative_ends_at_inf(self):
        h = Histogram("h", buckets=(1, 10))
        for v in (0.5, 5, 500):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (10.0, 2), (math.inf, 3)]
        assert h.count == 3 and h.sum == 505.5

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", buckets=(5, 1))

    def test_metric_names_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            reg.counter("bad name")
        with pytest.raises(ValueError, match="digit"):
            reg.counter("0bad")


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels={"x": "1"})
        b = reg.counter("c", labels={"x": "1"})
        c = reg.counter("c", labels={"x": "2"})
        assert a is b and a is not c

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("m")


class TestExporterGoldens:
    """Byte-exact: any drift here breaks downstream scrapers/parsers."""

    def test_prometheus_golden(self):
        expected = (
            "# HELP repro_messages Messages delivered\n"
            "# TYPE repro_messages counter\n"
            'repro_messages_total{algo="prefix"} 5\n'
            "# TYPE repro_depth gauge\n"
            "repro_depth 3.5\n"
            "# HELP repro_sizes Payload sizes\n"
            "# TYPE repro_sizes histogram\n"
            'repro_sizes_bucket{le="1"} 1\n'
            'repro_sizes_bucket{le="2"} 2\n'
            'repro_sizes_bucket{le="+Inf"} 3\n'
            "repro_sizes_sum 6.5\n"
            "repro_sizes_count 3\n"
        )
        assert _small_registry().to_prometheus() == expected

    def test_jsonlines_golden(self):
        expected = (
            '{"labels": {"algo": "prefix"}, "name": "repro_messages", '
            '"type": "counter", "value": 5.0}\n'
            '{"name": "repro_depth", "type": "gauge", "value": 3.5}\n'
            '{"buckets": {"+Inf": 3, "1": 1, "2": 2}, "count": 3, '
            '"name": "repro_sizes", "sum": 6.5, "type": "histogram"}\n'
        )
        assert _small_registry().to_jsonlines() == expected

    def test_exports_are_deterministic(self):
        assert (
            _small_registry().to_prometheus()
            == _small_registry().to_prometheus()
        )
        assert (
            _small_registry().to_jsonlines() == _small_registry().to_jsonlines()
        )

    def test_jsonlines_parse_back(self):
        rows = [
            json.loads(line)
            for line in _small_registry().to_jsonlines().splitlines()
        ]
        assert [r["type"] for r in rows] == ["counter", "gauge", "histogram"]

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"k": 'a"b\\c\nd'}).inc(1)
        out = reg.to_prometheus()
        assert 'k="a\\"b\\\\c\\nd"' in out

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
        assert MetricsRegistry().to_jsonlines() == ""


class TestFeeds:
    def test_registry_from_counters_covers_ledger(self):
        dc = DualCube(2)
        _, result = dual_prefix_engine(dc, list(range(dc.num_nodes)), ADD)
        reg = registry_from_counters(result.counters)
        by_name = {m.name: m for m in reg.metrics()}
        assert by_name["repro_messages"].value == result.counters.messages
        assert by_name["repro_comm_steps"].value == result.counters.comm_steps
        assert by_name["repro_node_sends"].count == dc.num_nodes

    def test_registry_from_timeline_covers_recorder(self):
        dc = DualCube(2)
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_timeline(t):
            dual_prefix_engine(dc, list(range(dc.num_nodes)), ADD)
        reg = registry_from_timeline(t)
        by_name = {m.name: m for m in reg.metrics() if not m.labels}
        assert by_name["repro_timeline_cycles"].value == t.num_cycles
        assert by_name["repro_timeline_messages"].value == len(t.events)
        fault_counters = [
            m for m in reg.metrics() if m.name == "repro_timeline_faults"
        ]
        assert sorted(m.labels["kind"] for m in fault_counters) == [
            "crash",
            "drop",
            "join",
            "leave",
            "timeout",
        ]

    def test_feeds_compose_into_one_registry(self):
        dc = DualCube(2)
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_timeline(t):
            _, result = dual_prefix_engine(dc, list(range(dc.num_nodes)), ADD)
        reg = registry_from_counters(result.counters)
        out = registry_from_timeline(t, registry=reg)
        assert out is reg
        names = {m.name for m in reg.metrics()}
        assert "repro_messages" in names and "repro_timeline_cycles" in names


class TestPrometheusSpecConformance:
    """Text-format spec details: the +Inf bucket, special values, and
    family grouping."""

    def test_inf_bucket_present_and_equals_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 2))
        for v in (0.5, 1.5, 99):
            h.observe(v)
        lines = reg.to_prometheus().splitlines()
        inf_lines = [l for l in lines if 'le="+Inf"' in l]
        assert len(inf_lines) == 1
        (count_line,) = [l for l in lines if l.startswith("h_count")]
        assert inf_lines[0].split()[-1] == count_line.split()[-1] == "3"

    def test_explicit_inf_bucket_is_normalized(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 2, math.inf))
        assert h.bounds == (1.0, 2.0)
        h.observe(5)
        lines = reg.to_prometheus().splitlines()
        assert len([l for l in lines if 'le="+Inf"' in l]) == 1

    def test_only_inf_bucket_rejected(self):
        with pytest.raises(ValueError, match="finite bucket"):
            Histogram("h", buckets=(math.inf,))

    def test_negative_inf_and_nan_render_per_spec(self):
        reg = MetricsRegistry()
        reg.gauge("lo").set(-math.inf)
        reg.gauge("hi").set(math.inf)
        reg.gauge("bad").set(math.nan)
        text = reg.to_prometheus()
        assert "lo -Inf\n" in text
        assert "hi +Inf\n" in text
        assert "bad NaN\n" in text
        assert "-inf" not in text and " nan" not in text

    def test_interleaved_families_are_grouped(self):
        reg = MetricsRegistry()
        reg.counter("a", "first", {"x": "1"}).inc(1)
        reg.counter("b").inc(2)
        reg.counter("a", labels={"x": "2"}).inc(3)
        lines = reg.to_prometheus().splitlines()
        assert lines == [
            "# HELP a first",
            "# TYPE a counter",
            'a_total{x="1"} 1',
            'a_total{x="2"} 3',
            "# TYPE b counter",
            "b_total 2",
        ]

    def test_cross_labelset_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"x": "1"})
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("m", labels={"x": "2"})
