"""PhaseProfiler spans and their wiring into the algorithms."""

import numpy as np
import pytest

from repro.core.dual_sort import dual_sort_vec
from repro.core.large_inputs import large_prefix, large_sort
from repro.core.ops import ADD
from repro.obs import NULL_PROFILER, PhaseProfiler
from repro.topology import DualCube, RecursiveDualCube


class TestProfiler:
    def test_span_records_name_meta_and_duration(self):
        p = PhaseProfiler()
        with p.span("work", step=3):
            pass
        (s,) = p.spans
        assert s.name == "work"
        assert s.meta == {"step": 3}
        assert s.duration_s >= 0.0

    def test_totals_sum_repeats_in_first_seen_order(self):
        p = PhaseProfiler()
        for name in ("a", "b", "a"):
            with p.span(name):
                pass
        totals = p.totals()
        assert list(totals) == ["a", "b"]
        assert totals["a"] >= 0.0 and len(p.spans) == 3
        assert p.total_s() == pytest.approx(sum(s.duration_s for s in p.spans))

    def test_spans_record_even_when_body_raises(self):
        p = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with p.span("bad"):
                raise RuntimeError("boom")
        assert [s.name for s in p.spans] == ["bad"]

    def test_null_profiler_is_inert(self):
        with NULL_PROFILER.span("anything", k=1):
            pass
        assert not hasattr(NULL_PROFILER, "spans")


class TestAlgorithmWiring:
    def test_large_prefix_phases(self):
        dc = DualCube(2)
        prof = PhaseProfiler()
        vals = np.arange(dc.num_nodes * 4)
        out = large_prefix(dc, vals, ADD, profiler=prof)
        assert list(out) == list(np.cumsum(vals))
        assert list(prof.totals()) == ["local-prefix", "network", "fold"]

    def test_large_sort_phases_cover_schedule_segments(self):
        rdc = RecursiveDualCube(2)
        prof = PhaseProfiler()
        keys = np.arange(rdc.num_nodes * 2)[::-1]
        out = large_sort(rdc, keys, profiler=prof)
        assert list(out) == sorted(keys)
        totals = prof.totals()
        assert list(totals)[0] == "local-sort"
        # One span per ScheduleStep, named by its recursion segment.
        assert any(name.startswith("base") for name in totals)
        assert any("merge" in name for name in totals)

    def test_dual_sort_vec_per_step_spans(self):
        rdc = RecursiveDualCube(2)
        prof = PhaseProfiler()
        keys = np.arange(rdc.num_nodes)[::-1]
        out = dual_sort_vec(rdc, keys, profiler=prof)
        assert list(out) == sorted(keys)
        steps = [s.meta.get("step") for s in prof.spans]
        assert steps == sorted(steps)  # one span per step, in order
        assert all("dim" in s.meta for s in prof.spans)

    def test_profiler_default_changes_nothing(self):
        dc = DualCube(2)
        vals = np.arange(dc.num_nodes * 4)
        a = large_prefix(dc, vals, ADD)
        b = large_prefix(dc, vals, ADD, profiler=PhaseProfiler())
        assert list(a) == list(b)
