"""Engine/vectorized wiring of the timeline recorder.

The headline guarantee: a recorder attached to an engine run carries the
*same* per-cycle event set as the static analyzer's extracted schedule —
for both matchers and for the fast bookkeeping path (whose bulk flush
must preserve per-cycle resolution, not collapse to one end-of-run blob).
"""

import pytest

from repro.analysis.static.extract import extract_schedule
from repro.core.dual_prefix import (
    dual_prefix_engine,
    dual_prefix_program,
    dual_prefix_vec,
)
from repro.core.dual_sort import (
    dual_sort_engine,
    dual_sort_schedule,
    schedule_program,
)
from repro.core.ops import ADD
from repro.obs import TimelineRecorder, cross_validate_timeline
from repro.simulator import (
    CostCounters,
    FaultPlan,
    SendRecv,
    run_spmd,
    use_matching,
    use_timeline,
)
from repro.topology import DualCube, Hypercube, RecursiveDualCube

MATCHERS = ["indexed", "legacy"]


def pairswap(ctx):
    got = yield SendRecv(ctx.rank ^ 1, ctx.rank)
    return got


def _timeline_key(t):
    return sorted((e.cycle, e.src, e.dst, e.size, e.kind) for e in t.events)


class TestEngineWiring:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_pairswap_records_one_cycle(self, matching):
        h = Hypercube(1)
        t = TimelineRecorder(num_nodes=2)
        run_spmd(h, pairswap, timeline=t, matching=matching)
        assert t.num_cycles == 1
        assert _timeline_key(t) == [
            (1, 0, 1, 1, "sendrecv"),
            (1, 1, 0, 1, "sendrecv"),
        ]

    def test_fast_path_flush_keeps_cycle_resolution(self):
        # Fault-free indexed runs take the fast bookkeeping path; the
        # recorder must still see every (cycle, src, dst) individually.
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_timeline(t):
            dual_prefix_engine(dc, vals, ADD)
        per_cycle = [a.messages for a in t.cycle_aggregates()]
        assert len(per_cycle) == t.num_cycles > 1
        assert sum(per_cycle) == len(t.events)
        # Not one blob: messages are spread over multiple cycles.
        assert sum(1 for m in per_cycle if m) > 1

    def test_matchers_and_fast_mode_record_identical_timelines(self):
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        keys = {}
        for matching in MATCHERS:
            for fast in (False, True):
                t = TimelineRecorder(num_nodes=dc.num_nodes)
                program = dual_prefix_program(dc, vals, ADD)
                run_spmd(dc, program, timeline=t, matching=matching, fast=fast)
                keys[(matching, fast)] = _timeline_key(t)
        first, *rest = keys.values()
        assert first and all(k == first for k in rest)

    def test_use_timeline_rejects_non_recorders(self):
        with pytest.raises(TypeError, match="record_message"):
            with use_timeline(object()):
                pass

    def test_use_timeline_reaches_nested_run_spmd(self):
        t = TimelineRecorder()
        with use_timeline(t):
            dual_prefix_engine(DualCube(2), list(range(8)), ADD)
        assert t.events  # the inner run_spmd picked up the ambient recorder


class TestFaultEvents:
    @pytest.mark.parametrize("matching", MATCHERS)
    def test_drop_recorded_with_endpoints(self, matching):
        h = Hypercube(1)
        plan = FaultPlan(drops={(0, 1, 1)})
        t = TimelineRecorder(num_nodes=2)
        run_spmd(h, pairswap, fault_plan=plan, timeline=t, matching=matching)
        drops = [f for f in t.faults if f.kind == "drop"]
        assert len(drops) == 1
        assert (drops[0].src, drops[0].dst) == (0, 1)
        assert drops[0].cycle >= 1

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_crash_and_timeout_recorded(self, matching):
        h = Hypercube(1)
        plan = FaultPlan(node_crashes={1: 1}, timeout=3, on_timeout="cancel")
        t = TimelineRecorder(num_nodes=2)
        run_spmd(h, pairswap, fault_plan=plan, timeline=t, matching=matching)
        counts = t.fault_counts()
        assert counts["crash"] == 1
        assert counts["timeout"] >= 1
        crash = next(f for f in t.faults if f.kind == "crash")
        assert crash.rank == 1 and crash.cycle == 1

    @pytest.mark.parametrize("matching", MATCHERS)
    def test_downtime_leave_and_join_recorded(self, matching):
        h = Hypercube(1)
        plan = FaultPlan(downtimes=[(1, 1, 3)])
        t = TimelineRecorder(num_nodes=2)
        r = run_spmd(h, pairswap, fault_plan=plan, timeline=t,
                     matching=matching)
        assert r.returns == [1, 0]  # exchange completed after the rejoin
        leaves = [(f.cycle, f.rank) for f in t.faults if f.kind == "leave"]
        joins = [(f.cycle, f.rank) for f in t.faults if f.kind == "join"]
        assert leaves == [(1, 1)]
        assert joins == [(3, 1)]
        aggs = {a.cycle: a for a in t.cycle_aggregates()}
        assert aggs[1].leaves == 1 and aggs[3].joins == 1
        # leave/join count toward the per-cycle fault total.
        assert aggs[1].faults >= 1 and aggs[3].faults >= 1


class TestVectorizedWiring:
    def test_attach_timeline_mirrors_bulk_rounds(self):
        dc = DualCube(2)
        counters = CostCounters(dc.num_nodes)
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        counters.attach_timeline(t)
        dual_prefix_vec(dc, list(range(dc.num_nodes)), ADD, counters=counters)
        comm = [s for s in t.steps if s.kind == "comm"]
        comp = [s for s in t.steps if s.kind == "comp"]
        assert len(comm) == counters.comm_steps
        assert comp  # the t/s update rounds
        assert t.total_messages == counters.messages
        assert t.num_cycles == counters.comm_steps

    def test_attach_timeline_validates_and_detaches(self):
        c = CostCounters(2)
        with pytest.raises(TypeError, match="record_comm_step"):
            c.attach_timeline(object())
        t = TimelineRecorder()
        c.attach_timeline(t)
        c.attach_timeline(None)
        c.record_comm_step(2)
        assert t.steps == ()


class TestCrossValidation:
    """Timeline vs static extractor, event for event, D_2..D_4."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_prefix_timeline_matches_static_schedule(self, n):
        dc = DualCube(n)
        vals = list(range(dc.num_nodes))
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_timeline(t):
            dual_prefix_engine(dc, vals, ADD)
        static = extract_schedule(dc, dual_prefix_program(dc, vals, ADD))
        assert cross_validate_timeline(t, static) == []

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_sort_timeline_matches_static_schedule(self, n):
        rdc = RecursiveDualCube(n)
        keys = list(range(rdc.num_nodes))[::-1]
        t = TimelineRecorder(num_nodes=rdc.num_nodes)
        with use_timeline(t):
            dual_sort_engine(rdc, keys)
        static = extract_schedule(
            rdc, schedule_program(rdc, keys, dual_sort_schedule(rdc.n))
        )
        assert cross_validate_timeline(t, static) == []

    def test_legacy_matcher_also_matches_static_schedule(self):
        dc = DualCube(2)
        vals = list(range(dc.num_nodes))
        t = TimelineRecorder(num_nodes=dc.num_nodes)
        with use_matching("legacy"), use_timeline(t):
            dual_prefix_engine(dc, vals, ADD)
        static = extract_schedule(dc, dual_prefix_program(dc, vals, ADD))
        assert cross_validate_timeline(t, static) == []
