"""E11 — future-work "simulations": random traffic D_n vs hypercube.

Routes uniform random pairs through D_n (shortest-path routing with at
most two cross-edge hops) and through Q_{2n-1} (dimension-order), and
compares the architecture-level quantities the paper's motivation talks
about.

Expected shape: the hypercube's average hop count is lower (it has the
extra links) but only by the +2-for-cluster-crossings margin — the
"almost as efficient" claim; the dual-cube achieves this with half the
links per node, so its per-link utilization is higher but its maximum
link load stays within a small factor.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.routing import route
from repro.simulator.traffic import (
    hypercube_dimension_order_path,
    random_pairs,
    run_traffic,
)
from repro.topology import DualCube, Hypercube
from repro.topology.metrics import average_distance

from benchmarks._util import emit

HEADERS = [
    "network", "pairs", "avg hops", "max link load", "imbalance",
    "loaded links", "links", "retrans", "path hops",
]


def traffic_rows(n: int, num_pairs: int, seed: int = 0):
    dc = DualCube(n)
    cube = Hypercube(2 * n - 1)
    rng = np.random.default_rng(seed)
    pairs = random_pairs(dc.num_nodes, num_pairs, rng)
    return [
        run_traffic(dc, lambda u, v: route(dc, u, v), pairs).row(),
        run_traffic(cube, hypercube_dimension_order_path, pairs).row(),
    ]


@pytest.mark.parametrize("n", [3, 4, 5])
def test_random_traffic_comparison(benchmark, n):
    rows = benchmark.pedantic(
        traffic_rows, args=(n, 2000), rounds=1, iterations=1
    )
    emit(
        f"E11_random_traffic_n{n}",
        format_table(HEADERS, rows, title=f"Random traffic, 2000 pairs, |V| = {2 ** (2 * n - 1)}"),
    )
    d_row, q_row = rows
    # Hypercube wins average hops, but within the +2 crossing margin.
    assert q_row[2] <= d_row[2] <= q_row[2] + 2.0
    # The dual-cube achieves it with n/(2n-1) of the links; its peak link
    # load stays within 3x the hypercube's on identical traffic.
    assert d_row[6] < q_row[6]
    assert d_row[3] <= 3 * q_row[3]


def test_average_hops_converges_to_average_distance(benchmark):
    """Sanity of the traffic model: uniform traffic -> mean distance."""
    dc = DualCube(3)

    def run():
        rng = np.random.default_rng(1)
        pairs = random_pairs(32, 4000, rng)
        return run_traffic(dc, lambda u, v: route(dc, u, v), pairs)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.avg_hops == pytest.approx(average_distance(dc), rel=0.05)


def test_cross_edge_hotspot_analysis(benchmark):
    """Cross-edges are the scarce resource: measure their share of load."""
    dc = DualCube(3)

    def run():
        from collections import Counter

        rng = np.random.default_rng(2)
        pairs = random_pairs(32, 3000, rng)
        load = Counter()
        for u, v in pairs:
            p = route(dc, u, v)
            for a, b in zip(p, p[1:]):
                kind = "cross" if dc.class_of(a) != dc.class_of(b) else "intra"
                load[kind] += 1
        return load

    load = benchmark.pedantic(run, rounds=1, iterations=1)
    total = load["cross"] + load["intra"]
    share = load["cross"] / total
    num_cross = dc.num_nodes // 2
    num_intra = dc.edge_count() - num_cross
    emit(
        "E11_cross_edge_share",
        f"cross-edge load share: {share:.3f} of {total} hops "
        f"({num_cross} cross links vs {num_intra} intra links; "
        f"uniform links would carry {num_cross / dc.edge_count():.3f})",
    )
    # Cross-edges carry more than their per-link uniform share (they are
    # the only class bridges), but routing keeps the excess bounded.
    assert share > num_cross / dc.edge_count()
    assert share < 0.6
