"""E9 — future-work item 1: inputs larger than the network.

Blocked prefix and merge-split sort for N = B * 2^(2n-1), B in 1..64.

Expected shape: network communication *steps* are flat in B (the schedule
is unchanged); message payload grows linearly in B; per-node local work
grows as O(B) for prefix and O(B log B + B * steps) for sort — so for
fixed hardware the efficiency sweet spot moves toward larger B, the
standard coarsening story the paper's future work anticipates.
"""

import numpy as np
import pytest

from repro.analysis.complexity import dual_prefix_comm_exact, dual_sort_comm_exact
from repro.analysis.tables import format_table
from repro.core.large_inputs import large_prefix, large_sort
from repro.core.ops import ADD
from repro.simulator import CostCounters
from repro.topology import DualCube, RecursiveDualCube

from benchmarks._util import emit

BLOCKS = [1, 2, 4, 8, 16, 32, 64]


def prefix_rows(n: int):
    dc = DualCube(n)
    rows = []
    for b in BLOCKS:
        rng = np.random.default_rng(b)
        vals = rng.integers(0, 100, b * dc.num_nodes)
        c = CostCounters(dc.num_nodes)
        out = large_prefix(dc, vals, ADD, counters=c)
        assert list(out) == list(np.cumsum(vals))
        rows.append(
            (b, b * dc.num_nodes, c.comm_steps, c.payload_items, c.max_node_ops)
        )
    return rows


def sort_rows(n: int):
    rdc = RecursiveDualCube(n)
    rows = []
    for b in BLOCKS:
        rng = np.random.default_rng(b)
        keys = rng.integers(0, 10**6, b * rdc.num_nodes)
        c = CostCounters(rdc.num_nodes)
        out = large_sort(rdc, keys, counters=c)
        assert list(out) == sorted(keys)
        rows.append(
            (b, b * rdc.num_nodes, c.comm_steps, c.payload_items, c.max_node_ops)
        )
    return rows


@pytest.mark.parametrize("n", [3, 4])
def test_large_prefix_scaling(benchmark, n):
    rows = benchmark.pedantic(prefix_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"E9_large_prefix_n{n}",
        format_table(
            ["B = N/P", "N", "comm steps", "payload items", "max node ops"],
            rows,
            title=f"Large-input prefix on D_{n}: steps flat, local work linear in B",
        ),
    )
    comm = {r[2] for r in rows}
    assert comm == {dual_prefix_comm_exact(n)}
    ops = [r[4] for r in rows]
    assert all(b >= a for a, b in zip(ops, ops[1:]))
    # Linear-in-B local work: doubling B from 32 to 64 roughly doubles ops.
    assert 1.5 <= ops[-1] / ops[-2] <= 2.5


@pytest.mark.parametrize("n", [3])
def test_large_sort_scaling(benchmark, n):
    rows = benchmark.pedantic(sort_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"E9_large_sort_n{n}",
        format_table(
            ["B = N/P", "N", "comm steps", "payload items", "max node ops"],
            rows,
            title=f"Large-input sort on D_{n}: steps flat, payload linear in B",
        ),
    )
    assert {r[2] for r in rows} == {dual_sort_comm_exact(n)}
    payloads = [r[3] for r in rows]
    assert payloads[1] == 2 * payloads[0]
    assert payloads[-1] == 64 * payloads[0]


def test_large_sort_wallclock(benchmark):
    """N = 64 * 512 = 32768 keys on D_5."""
    rdc = RecursiveDualCube(5)
    keys = np.random.default_rng(1).permutation(64 * rdc.num_nodes)
    out = benchmark(lambda: large_sort(rdc, keys))
    assert list(out) == list(range(64 * rdc.num_nodes))


def test_large_prefix_wallclock(benchmark):
    """N = 64 * 2048 = 131072 values on D_6."""
    dc = DualCube(6)
    vals = np.random.default_rng(2).integers(0, 100, 64 * dc.num_nodes)
    out = benchmark(lambda: large_prefix(dc, vals, ADD))
    assert out[-1] == vals.sum()
