"""E5 — Figure 4: constructing D_n from four D_{n-1}.

Regenerates the recursive construction: the four contiguous copies, the
joining links the step adds (Fig. 4's bold lines), and the isomorphism
between the recursive and standard presentations.

Expected shape: |E(D_n)| = 4|E(D_{n-1})| + 2^(2n-2); joining links use
only the two new dimensions; the base case is K_2.
"""

import pytest

from repro.analysis.tables import format_table
from repro.topology import (
    DualCube,
    RecursiveDualCube,
    recursive_to_standard,
    standard_to_recursive,
)

from benchmarks._util import emit


def construction_rows(max_n: int):
    rows = []
    for n in range(2, max_n + 1):
        r = RecursiveDualCube(n)
        sub_edges = len(list(RecursiveDualCube(n - 1).edges()))
        joining = len(r.joining_edges())
        rows.append(
            (
                f"D_{n}",
                f"4 x D_{n - 1}",
                4 * sub_edges,
                joining,
                4 * sub_edges + joining,
                len(list(r.edges())),
            )
        )
    return rows


def test_construction_table(benchmark):
    rows = benchmark.pedantic(construction_rows, args=(6,), rounds=1, iterations=1)
    emit(
        "E5_fig4_recursive_construction",
        format_table(
            ["network", "built from", "copied edges", "joining edges", "sum", "actual |E|"],
            rows,
            title="Figure 4: recursive construction D_n = 4 x D_(n-1) + joining links",
        ),
    )
    for _, _, copied, joining, total, actual in rows:
        assert total == actual
    # Joining links count: the two new dimensions connect half the nodes each.
    for n, (_, _, _, joining, _, _) in zip(range(2, 7), rows):
        assert joining == 2 ** (2 * n - 2)


def test_fig4_small_instances(benchmark):
    def build():
        return RecursiveDualCube(2), RecursiveDualCube(3)

    r2, r3 = benchmark(build)
    art = ["Figure 4(a,b): D_2 from four D_1 (K_2)"]
    art.append(f"  copies: {[list(r2.subcube_members(i)) for i in range(4)]}")
    art.append(f"  joining edges: {r2.joining_edges()}")
    art.append("")
    art.append("Figure 4(c,d): D_3 from four D_2")
    art.append(f"  copies: {[list(r3.subcube_members(i)) for i in range(4)]}")
    art.append(f"  joining edges ({len(r3.joining_edges())}): {r3.joining_edges()}")
    emit("E5_fig4_instances", "\n".join(art))
    assert len(r2.joining_edges()) == 4
    assert len(r3.joining_edges()) == 16


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_isomorphism_between_presentations(benchmark, n):
    dc = DualCube(n)
    r = RecursiveDualCube(n)

    def check():
        fwd = [standard_to_recursive(n, u) for u in dc.nodes()]
        ok = sorted(fwd) == list(dc.nodes())
        for u in dc.nodes():
            ok &= recursive_to_standard(n, fwd[u]) == u
        for u, v in dc.edges():
            ok &= r.has_edge(fwd[u], fwd[v])
        return ok

    assert benchmark(check)
