"""E7 — Theorem 2: D_sort runs in at most ~6n² comm / ~2n² comparison steps.

Measured on the cycle-accurate engine (n <= 3) and via the vectorized
backend's identical counters (n <= 7), against the paper bound
6n² - 3n - 2 and the same-size hypercube bitonic baseline n(2n-1).

Expected shape: the hypercube wins every row (it has 2n-1 links per node
vs n); the dual-cube overhead ratio grows monotonically toward — but
never reaches — 3x, the paper's "the overhead for the emulation will be
[3] times of the corresponding hypercube algorithm in the worst-case due
to the lack of edges".  Comparison steps match the hypercube exactly.
"""

import numpy as np
import pytest

from repro.analysis.complexity import (
    hypercube_bitonic_steps,
    theorem2_comm_bound,
    theorem2_comp_bound,
)
from repro.analysis.tables import format_table
from repro.core.bitonic import hypercube_bitonic_sort_vec
from repro.core.dual_sort import dual_sort_engine, dual_sort_vec
from repro.simulator import CostCounters
from repro.topology import RecursiveDualCube

from benchmarks._util import emit


def measured_row(n: int):
    rdc = RecursiveDualCube(n)
    rng = np.random.default_rng(n)
    keys = rng.integers(0, 10**6, rdc.num_nodes)
    c = CostCounters(rdc.num_nodes)
    out = dual_sort_vec(rdc, keys, counters=c)
    assert list(out) == sorted(keys)
    ch = CostCounters(rdc.num_nodes)
    hout = hypercube_bitonic_sort_vec(keys, counters=ch)
    assert list(hout) == sorted(keys)
    return (
        n,
        rdc.num_nodes,
        c.comm_steps,
        theorem2_comm_bound(n),
        ch.comm_steps,
        round(c.comm_steps / ch.comm_steps, 3),
        c.comp_steps,
        theorem2_comp_bound(n),
    )


def test_theorem2_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [measured_row(n) for n in range(1, 8)], rounds=1, iterations=1
    )
    emit(
        "E7_theorem2_sort_steps",
        format_table(
            [
                "n",
                "nodes",
                "comm (measured)",
                "paper bound",
                "Q_(2n-1) comm",
                "ratio",
                "comp",
                "paper comp",
            ],
            rows,
            title="Theorem 2: D_sort communication/comparison steps vs "
            "same-size hypercube bitonic sort",
        ),
    )
    prev_ratio = 0.0
    for n, _, comm, bound, hyp, ratio, comp, comp_bound in rows:
        assert comm <= bound
        assert comp == comp_bound == hyp  # comparisons match the hypercube
        assert hyp <= comm  # the hypercube wins communication everywhere
        assert ratio < 3.0  # paper's 3x worst-case emulation overhead
        assert ratio >= prev_ratio  # crossover shape: ratio climbs toward 3
        prev_ratio = ratio


@pytest.mark.parametrize("n", [1, 2, 3])
@pytest.mark.parametrize("policy", ["packed", "single"])
def test_engine_validates_counts(benchmark, n, policy):
    rdc = RecursiveDualCube(n)
    rng = np.random.default_rng(n)
    keys = [int(k) for k in rng.integers(0, 1000, rdc.num_nodes)]

    def run():
        return dual_sort_engine(rdc, keys, payload_policy=policy)

    out, res = benchmark(run)
    assert out == sorted(keys)
    c = CostCounters(rdc.num_nodes)
    dual_sort_vec(rdc, np.array(keys), counters=c, payload_policy=policy)
    assert res.comm_steps == c.comm_steps
    assert res.counters.messages == c.messages


def test_wallclock_sort_scaling(benchmark):
    """Vectorized D_sort wall time at n = 6 (2048 nodes)."""
    rdc = RecursiveDualCube(6)
    keys = np.random.default_rng(0).permutation(rdc.num_nodes)
    out = benchmark(lambda: dual_sort_vec(rdc, keys))
    assert list(out) == list(range(rdc.num_nodes))
