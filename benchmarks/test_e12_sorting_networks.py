"""E12 — Section 5's two Batcher networks, and why bitonic fits the cube.

The paper: "Batcher's O(n²)-time bitonic and odd-even merge sorting
algorithms are presently the fastest practical deterministic sorting
algorithms available."  This experiment regenerates the classical
comparison and the structural reason the dual-cube sort is built on
bitonic: every bitonic comparator is a single-bit (dimension) exchange —
directly executable/emulable on cube-like networks — while odd-even
merge's comparators are not.

Expected shape: identical depth q(q+1)/2; odd-even uses strictly fewer
comparators; bitonic is a dimension-exchange network at every width,
odd-even never (width >= 4).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.sorting_networks import (
    apply_network,
    bitonic_sort_network,
    comparator_count,
    is_dimension_exchange_network,
    network_depth,
    odd_even_merge_sort_network,
)

from benchmarks._util import emit


def network_rows():
    rows = []
    for q in range(1, 8):
        w = 1 << q
        bn = bitonic_sort_network(w)
        on = odd_even_merge_sort_network(w)
        rows.append(
            (
                w,
                network_depth(bn),
                comparator_count(bn),
                network_depth(on),
                comparator_count(on),
                "yes" if is_dimension_exchange_network(bn) else "no",
                "yes" if is_dimension_exchange_network(on) else "no",
            )
        )
    return rows


def test_network_comparison_table(benchmark):
    rows = benchmark.pedantic(network_rows, rounds=1, iterations=1)
    emit(
        "E12_sorting_networks",
        format_table(
            [
                "width",
                "bitonic depth",
                "bitonic comps",
                "odd-even depth",
                "odd-even comps",
                "bitonic dim-exch?",
                "odd-even dim-exch?",
            ],
            rows,
            title="Section 5: Batcher's two networks — equal depth, bitonic "
            "maps to cube dimensions",
        ),
    )
    for w, bd, bc, od, oc, b_dim, o_dim in rows:
        assert bd == od  # equal depth
        if w >= 4:
            assert oc < bc  # odd-even is comparator-cheaper
            assert o_dim == "no"
        assert b_dim == "yes"


@pytest.mark.parametrize("kind", ["bitonic", "odd-even"])
def test_network_wallclock(benchmark, kind):
    benchmark.group = "E12 networks width 256"
    w = 256
    net = (
        bitonic_sort_network(w)
        if kind == "bitonic"
        else odd_even_merge_sort_network(w)
    )
    keys = np.random.default_rng(0).permutation(w)
    out = benchmark(lambda: apply_network(keys, net))
    assert list(out) == list(range(w))


def test_bitonic_network_agrees_with_dual_cube_sort(benchmark):
    """End to end: the comparator formulation, the hypercube schedule, and
    the dual-cube emulation all compute the same permutation."""
    from repro.core.dual_sort import dual_sort_vec
    from repro.topology import RecursiveDualCube

    rdc = RecursiveDualCube(3)
    keys = np.random.default_rng(1).integers(0, 10**6, 32)

    def run():
        a = apply_network(keys, bitonic_sort_network(32))
        b = dual_sort_vec(rdc, keys)
        return a, b

    a, b = benchmark(run)
    assert list(a) == list(b) == sorted(keys)
