"""F3 — broadcast latency under faults.

The intact D_n broadcasts in 2n rounds (its diameter; experiment F2).
This experiment sweeps random node-fault counts and measures the
information-theoretic broadcast lower bound on the surviving network —
the source's eccentricity — plus how often the network stays whole.

Expected shape: below the connectivity (faults <= n-1) everything stays
reachable and the eccentricity grows by at most a few hops; well past it,
disconnection probability rises while reachable-part latency stays low
(faults thin the network but the dual-cube's many short detours keep
eccentricity near the diameter).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.routing import broadcast_depth
from repro.topology import DualCube, FaultSet, FaultyTopology

from benchmarks._util import emit


def degradation_rows(n: int, trials: int = 50):
    dc = DualCube(n)
    rows = []
    for faults in (0, 1, n - 1, n, 2 * n, 4 * n):
        depths = []
        disconnected = 0
        for t in range(trials):
            rng = np.random.default_rng(31_000 * n + 1000 * faults + t)
            fs = FaultSet.random(dc, faults, 0, rng)
            ft = FaultyTopology(dc, fs)
            src = int(rng.choice(ft.healthy_nodes()))
            d = broadcast_depth(ft, src)
            if d is None:
                disconnected += 1
            else:
                depths.append(d)
        rows.append(
            (
                faults,
                trials,
                disconnected,
                min(depths) if depths else "-",
                round(float(np.mean(depths)), 2) if depths else "-",
                max(depths) if depths else "-",
            )
        )
    return rows


@pytest.mark.parametrize("n", [3, 4])
def test_broadcast_degradation(benchmark, n):
    rows = benchmark.pedantic(degradation_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"F3_broadcast_degradation_n{n}",
        format_table(
            ["node faults", "trials", "disconnected", "min depth", "mean depth", "max depth"],
            rows,
            title=f"D_{n}: broadcast latency lower bound (source eccentricity) "
            f"under random node faults — intact broadcast: {2 * n} rounds",
        ),
    )
    # Below the connectivity: never disconnected; latency within a small
    # additive margin of the fault-free diameter.
    for faults, trials, disconnected, _lo, _mean, hi in rows:
        if faults <= n - 1:
            assert disconnected == 0
            assert hi <= 2 * n + 2

    # Fault-free rows must show the exact diameter bound.
    faults0 = rows[0]
    assert faults0[0] == 0 and faults0[5] <= 2 * n


def test_engine_broadcast_matches_intact_depth(benchmark):
    """Cross-check: the cycle-accurate broadcast achieves 2n rounds, the
    eccentricity bound on the intact network."""
    from repro.routing import broadcast_engine

    dc = DualCube(3)

    def run():
        return broadcast_engine(dc, 5, "payload")

    got, res = benchmark(run)
    ft = FaultyTopology(dc, FaultSet())
    assert res.comm_steps == 2 * dc.n
    assert broadcast_depth(ft, 5) <= res.comm_steps
