"""A4 — the paper's two design techniques head-to-head on one problem.

The conclusion's argument: the cluster technique gives optimal or
near-optimal algorithms when the inter-cluster communication can be
designed directly (D_prefix), while the recursive/emulation technique is
generic but pays up to 3x.  This experiment computes the *same* parallel
prefix both ways:

* technique 1 (cluster): `D_prefix` — 2n steps;
* technique 2 (emulation): `Cube_prefix` run via the generic 3-hop
  dimension-exchange emulator — 6n-5 steps.

Expected shape: identical results (up to the scan order each technique
defines); emulation/cluster step ratio grows from 1.0 toward 3.
"""

import numpy as np
import pytest

from repro.analysis.complexity import dual_prefix_comm_exact
from repro.analysis.tables import format_table
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.emulation import emulated_cube_prefix, emulated_cube_prefix_vec
from repro.core.ops import ADD
from repro.simulator import CostCounters
from repro.topology import DualCube, RecursiveDualCube

from benchmarks._util import emit


def comparison_rows():
    rows = []
    for n in range(1, 8):
        dc = DualCube(n)
        rdc = RecursiveDualCube(n)
        rng = np.random.default_rng(n)
        vals = rng.integers(0, 1000, dc.num_nodes)

        c_cluster = CostCounters(dc.num_nodes)
        out_cluster = dual_prefix_vec(dc, vals, ADD, counters=c_cluster)
        assert list(out_cluster) == list(np.cumsum(vals))

        c_emu = CostCounters(rdc.num_nodes)
        _, out_emu = emulated_cube_prefix_vec(rdc, vals, ADD, counters=c_emu)
        assert list(out_emu) == list(np.cumsum(vals))

        rows.append(
            (
                n,
                dc.num_nodes,
                c_cluster.comm_steps,
                c_emu.comm_steps,
                round(c_emu.comm_steps / c_cluster.comm_steps, 3),
            )
        )
    return rows


def test_technique_comparison_table(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)
    emit(
        "A4_technique_comparison",
        format_table(
            [
                "n",
                "nodes",
                "cluster technique (D_prefix)",
                "emulation technique",
                "emulation/cluster",
            ],
            rows,
            title="A4: prefix by the paper's two techniques — designed "
            "inter-cluster communication vs generic 3-hop emulation",
        ),
    )
    prev = 0.0
    for n, _, cluster, emu, ratio in rows:
        assert cluster == dual_prefix_comm_exact(n)
        assert emu == 6 * n - 5
        assert ratio >= prev  # grows monotonically toward 3
        prev = ratio
        assert ratio < 3.0


@pytest.mark.parametrize("n", [1, 2, 3])
def test_engine_validates_emulated_prefix(benchmark, n):
    rdc = RecursiveDualCube(n)
    rng = np.random.default_rng(n)
    vals = [int(x) for x in rng.integers(0, 100, rdc.num_nodes)]

    def run():
        return emulated_cube_prefix(rdc, vals, ADD)

    t, s, res = benchmark(run)
    assert s == list(np.cumsum(vals))
    assert res.comm_steps == 6 * n - 5
