"""E2 — the introduction's comparative claims as an exact measurement table.

Regenerates the positioning argument of Sections 1-2: the dual-cube keeps
hypercube-like distances with roughly half the links of the same-size
hypercube, against the bounded-degree rivals (CCC, wrapped butterfly,
de Bruijn, shuffle-exchange).  All numbers are exact (full BFS sweeps).

Expected shape: for every n, D_n matches Q_{2n-1} in node count with
degree n vs 2n-1 and diameter exactly one larger; its degree x diameter
cost beats CCC at comparable sizes.
"""

import pytest

from repro.analysis.tables import format_table
from repro.topology import (
    CubeConnectedCycles,
    DeBruijn,
    DualCube,
    Hypercube,
    ShuffleExchange,
    WrappedButterfly,
    measure,
)

from benchmarks._util import emit

HEADERS = ["network", "nodes", "edges", "degree", "diameter", "avg dist", "deg*diam"]


def comparison_rows(n: int):
    """Networks sized as closely as possible to D_n's 2^(2n-1) nodes."""
    q = 2 * n - 1
    topos = [DualCube(n), Hypercube(q)]
    # q * 2^q-node families: pick q' with q' * 2^q' closest to 2^(2n-1).
    best_ccc = min(range(3, 12), key=lambda k: abs(k * 2**k - 2**q))
    topos.append(CubeConnectedCycles(best_ccc))
    topos.append(WrappedButterfly(best_ccc))
    topos.append(DeBruijn(q))
    topos.append(ShuffleExchange(q))
    return [measure(t).row() for t in topos]


@pytest.mark.parametrize("n", [2, 3, 4])
def test_comparison_table(benchmark, n):
    rows = benchmark.pedantic(comparison_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"E2_comparison_n{n}",
        format_table(HEADERS, rows, title=f"Topology comparison around |V| = {2 ** (2 * n - 1)}"),
    )
    by_name = {r[0]: r for r in rows}
    d = by_name[f"D_{n}"]
    q = by_name[f"Q_{2 * n - 1}"]
    # Claim: same size, ~half the degree, diameter exactly +1.
    assert d[1] == q[1]
    assert d[3] == n and q[3] == 2 * n - 1
    assert d[4] == q[4] + 1
    # Claim: communication "almost as efficient as in hypercube" — the
    # average distance stays within ~35% of the hypercube's (Hamming plus
    # at most 2 extra hops for same-class cluster pairs).
    assert d[5] <= q[5] * 1.35


def test_metacube_family_extension(benchmark):
    """The dual-cube inside the authors' metacube family MC(k, m):
    MC(1, m) = D_{m+1}, and k = 2 pushes size further per unit degree."""
    from repro.topology import Metacube

    def rows():
        out = []
        for k, m in [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)]:
            mc = Metacube(k, m)
            out.append(
                (
                    mc.name,
                    mc.num_nodes,
                    mc.degree_formula,
                    f"= D_{m + 1}" if k == 1 else "",
                )
            )
        return out

    table = benchmark(rows)
    emit(
        "E2_metacube_family",
        format_table(
            ["network", "nodes", "degree", "note"],
            table,
            title="Metacube family: nodes per unit degree (MC(1, m) is the dual-cube)",
        ),
    )
    by_name = {r[0]: r for r in table}
    assert by_name["MC(2,3)"][1] == 16384 and by_name["MC(2,3)"][2] == 5
    # At equal degree 4: MC(2,2) has 8x the nodes of MC(1,3) = D_4.
    assert by_name["MC(2,2)"][1] == 8 * by_name["MC(1,3)"][1]


def test_degree_halving_across_family(benchmark):
    rows = benchmark(
        lambda: [
            (
                n,
                DualCube(n).n,
                2 * n - 1,
                DualCube(n).edge_count(),
                (2 * n - 1) * 2 ** (2 * n - 2),
            )
            for n in range(2, 9)
        ]
    )
    emit(
        "E2_degree_halving",
        format_table(
            ["n", "D_n degree", "Q_(2n-1) degree", "D_n edges", "Q_(2n-1) edges"],
            rows,
            title="Edges per node: dual-cube uses about half the hypercube's links",
        ),
    )
    for n, dn, qn, de, qe in rows:
        assert dn == (qn + 1) / 2  # degree n vs 2n-1: "about half"
        assert de * (2 * n - 1) == qe * n  # exact edge ratio n/(2n-1)
        assert de / qe <= 2 / 3  # at most two-thirds, shrinking to 1/2
