"""F2 — extension: collective communication in 2n steps.

The paper cites the authors' companion collective-communication work;
this experiment measures the cluster-technique collectives implemented
here: broadcast, reduce/allreduce, scatter, gather, allgather — all
completing in exactly 2n steps (the diameter, hence step-optimal within
the model) on the cycle-accurate engine, with measured message/payload
traffic.

Expected shape: steps = 2n for every collective at every n; payload
totals ordered broadcast < scatter ~ gather < allgather.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.routing import (
    allgather_engine,
    allreduce_engine,
    broadcast_engine,
    gather_engine,
    scatter_engine,
)
from repro.core.ops import ADD
from repro.topology import DualCube

from benchmarks._util import emit


def collective_rows(n: int):
    dc = DualCube(n)
    vals = [int(x) for x in np.random.default_rng(n).integers(0, 100, dc.num_nodes)]
    rows = []

    _, res = broadcast_engine(dc, 0, 42)
    rows.append(("broadcast", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = allreduce_engine(dc, vals, ADD)
    rows.append(("allreduce", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = scatter_engine(dc, 0, vals)
    rows.append(("scatter", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = gather_engine(dc, 0, vals)
    rows.append(("gather", res.comm_steps, res.counters.messages, res.counters.payload_items))
    _, res = allgather_engine(dc, vals)
    rows.append(("allgather", res.comm_steps, res.counters.messages, res.counters.payload_items))
    return rows


@pytest.mark.parametrize("n", [2, 3])
def test_collectives_table(benchmark, n):
    rows = benchmark.pedantic(collective_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"F2_collectives_n{n}",
        format_table(
            ["collective", "comm steps", "messages", "payload items"],
            rows,
            title=f"Collectives on D_{n} (diameter {2 * n}) — all step-optimal",
        ),
    )
    payloads = {name: payload for name, _, _, payload in rows}
    for name, steps, _msgs, _payload in rows:
        assert steps == 2 * n, name
    # Traffic ordering: one-value collectives < personalized < all-to-all.
    assert payloads["broadcast"] <= payloads["scatter"]
    assert payloads["scatter"] <= payloads["allgather"]
    assert payloads["gather"] <= payloads["allgather"]


@pytest.mark.parametrize("collective", ["scatter", "gather", "allgather"])
def test_collective_wallclock(benchmark, collective):
    benchmark.group = "F2 engine collectives D_3"
    dc = DualCube(3)
    vals = list(range(32))

    if collective == "scatter":
        out, res = benchmark(lambda: scatter_engine(dc, 0, vals))
        assert out == vals
    elif collective == "gather":
        out, res = benchmark(lambda: gather_engine(dc, 0, vals))
        assert out == vals
    else:
        lists, res = benchmark(lambda: allgather_engine(dc, vals))
        assert len(lists[0]) == 32
    assert res.comm_steps == 6


def test_every_root_works(benchmark):
    dc = DualCube(3)
    vals = list(range(32))

    def sweep():
        for root in range(0, 32, 5):
            got, res = scatter_engine(dc, root, vals)
            assert got == vals and res.comm_steps == 6
            coll, res = gather_engine(dc, root, vals)
            assert coll == vals and res.comm_steps == 6
        return True

    assert benchmark.pedantic(sweep, rounds=1, iterations=1)
