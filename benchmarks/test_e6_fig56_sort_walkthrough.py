"""E6 — Figures 5-6: the D_sort walkthrough on D_3.

Figure 5 ("generate bitonic sequence"): the four recursively sorted
D_2 copies, then the half-merge making the whole network one bitonic
sequence (lower half ascending, upper half descending).
Figure 6 ("sort bitonic sequence"): the 5 final-merge steps ending fully
sorted.

The paper's example keys were lost to OCR; the reproduction uses a fixed
seeded permutation of 0..31 (documented substitution — the algorithm is
oblivious, so the schedule is input-independent).
"""

import numpy as np

from repro import RecursiveDualCube, TraceRecorder
from repro.core.bitonic import is_bitonic
from repro.core.dual_sort import dual_sort_schedule, dual_sort_vec

from benchmarks._util import emit, grid


def test_figures_5_and_6(benchmark):
    rdc = RecursiveDualCube(3)
    keys = np.random.default_rng(2008).permutation(32)

    def run():
        trace = TraceRecorder()
        out = dual_sort_vec(rdc, keys, trace=trace)
        return out, trace

    out, trace = benchmark(run)
    labels = list(trace.labels())
    sched = dual_sort_schedule(3)

    art = [f"D_sort(D_3, ascending) on keys = {list(keys)}", ""]
    art.append("--- Figure 5: generate bitonic sequence in D_3 ---")
    last_phase = None
    fig6_start = len(labels) - (2 * 3 - 1)
    for i, lbl in enumerate(labels):
        if i == fig6_start:
            art.append("")
            art.append("--- Figure 6: sort bitonic sequence in D_3 ---")
        state = trace.snapshot(lbl, 32)
        art.append(f"{lbl}:")
        art.append(grid(state, width=16))
    emit("E6_fig56_sort_walkthrough", "\n".join(art))

    # Figure 5's endpoint: one bitonic sequence, halves asc/desc.
    half_merge_end = [l for l in labels if "half-merge D_3" in l][-1]
    state = trace.snapshot(half_merge_end, 32)
    assert list(state[:16]) == sorted(state[:16])
    assert list(state[16:]) == sorted(state[16:], reverse=True)
    assert is_bitonic(state)
    # Figure 6's endpoint: fully sorted.
    assert list(out) == list(range(32))
    # Step count matches 2n^2 - n = 15.
    assert len(sched) == 15


def test_recursion_stage_directions(benchmark):
    """Figure 5's first stage: the four D_2 copies sorted asc/desc/asc/desc."""
    rdc = RecursiveDualCube(3)
    keys = np.random.default_rng(42).permutation(32)

    def run():
        trace = TraceRecorder()
        dual_sort_vec(rdc, keys, trace=trace)
        return trace

    trace = benchmark(run)
    labels = list(trace.labels())
    # The recursive sub-sorts end right before the first half-merge D_3 step.
    first = next(i for i, l in enumerate(labels) if "half-merge D_3" in l)
    state = np.array(trace.snapshot(labels[first - 1], 32))
    for copy in range(4):
        block = list(state[copy * 8 : (copy + 1) * 8])
        expected = sorted(block, reverse=(copy % 2 == 1))
        assert block == expected, copy
