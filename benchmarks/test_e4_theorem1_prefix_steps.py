"""E4 — Theorem 1: D_prefix runs in at most 2n+1 comm / 2n comp steps.

Measured on the cycle-accurate engine (n <= 4) and via the vectorized
backend's identical counters (n <= 8), against the paper bound and the
same-size hypercube baseline (2n-1 steps).

Expected shape: measured(optimized) = 2n = hypercube + 1;
measured(paper-literal) = 2n+1 = the bound; computation = 2n everywhere;
results equal the serial prefix for every associative operation tried.
"""

import numpy as np
import pytest

from repro.analysis.complexity import (
    hypercube_prefix_steps,
    theorem1_comm_bound,
    theorem1_comp_bound,
)
from repro.analysis.tables import format_table
from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_vec
from repro.core.ops import ADD, CONCAT, MAX
from repro.core.verify import check_prefix
from repro.simulator import CostCounters
from repro.topology import DualCube

from benchmarks._util import emit


def measured_row(n: int):
    dc = DualCube(n)
    rng = np.random.default_rng(n)
    vals = rng.integers(0, 100, dc.num_nodes)
    c_opt = CostCounters(dc.num_nodes)
    out = dual_prefix_vec(dc, vals, ADD, counters=c_opt)
    check_prefix(list(vals), out, ADD)
    c_lit = CostCounters(dc.num_nodes)
    dual_prefix_vec(dc, vals, ADD, paper_literal=True, counters=c_lit)
    return (
        n,
        dc.num_nodes,
        c_opt.comm_steps,
        c_lit.comm_steps,
        theorem1_comm_bound(n),
        hypercube_prefix_steps(2 * n - 1),
        c_opt.comp_steps,
        theorem1_comp_bound(n),
    )


def test_theorem1_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [measured_row(n) for n in range(1, 9)], rounds=1, iterations=1
    )
    emit(
        "E4_theorem1_prefix_steps",
        format_table(
            [
                "n",
                "nodes",
                "comm (ours)",
                "comm (literal)",
                "paper bound 2n+1",
                "Q_(2n-1) comm",
                "comp",
                "paper comp 2n",
            ],
            rows,
            title="Theorem 1: D_prefix communication/computation steps",
        ),
    )
    for n, _, comm, lit, bound, hyp, comp, comp_bound in rows:
        assert comm <= bound and lit == bound
        assert comm == hyp + 1  # one extra step vs same-size hypercube
        assert comp == comp_bound


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_engine_validates_vectorized_counts(benchmark, n):
    dc = DualCube(n)
    rng = np.random.default_rng(n)
    vals = rng.integers(0, 100, dc.num_nodes).astype(object)

    def run():
        return dual_prefix_engine(dc, vals, ADD)

    out, res = benchmark(run)
    check_prefix(list(vals), out, ADD)
    assert res.comm_steps == 2 * n
    assert res.comp_steps == 2 * n


@pytest.mark.parametrize("op,maker", [
    (ADD, lambda rng, v: rng.integers(-1000, 1000, v)),
    (MAX, lambda rng, v: rng.integers(-1000, 1000, v)),
    (CONCAT, None),
])
def test_steps_are_operation_independent(benchmark, op, maker):
    """The oblivious schedule costs the same for any associative op."""
    dc = DualCube(3)
    rng = np.random.default_rng(7)
    if maker is None:
        vals = np.empty(32, dtype=object)
        vals[:] = [(int(x),) for x in rng.integers(0, 9, 32)]
    else:
        vals = maker(rng, 32)

    def run():
        c = CostCounters(32)
        out = dual_prefix_vec(dc, vals, op, counters=c)
        return out, c

    out, c = benchmark(run)
    check_prefix(list(vals), out, op)
    assert c.comm_steps == 6
    assert c.comp_steps == 6
