"""A2 — ablation: why D_prefix needs the u* data arrangement.

The paper arranges inputs so each cluster holds a *consecutive* block of
c (class-1 nodes hold c[u*], with the two address fields swapped).  This
ablation runs the identical communication schedule with the arrangement
disabled: the outputs are then the prefix of a *permuted* sequence, wrong
at a large fraction of positions — quantified here per n.

Expected shape: with arrangement, 0 mismatches; without, the error
fraction is large (the permutation moves every class-1 item whose fields
differ) and grows with n toward 50% of positions being held by class-1
nodes with misplaced blocks.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.arrangement import arranged_index_v
from repro.core.dual_prefix import dual_prefix_vec
from repro.core.ops import ADD
from repro.core.verify import sequential_prefix
from repro.topology import DualCube

from benchmarks._util import emit


def without_arrangement(dc: DualCube, vals: np.ndarray) -> np.ndarray:
    """Run the schedule with node u holding c[u] directly (no swap).

    Feeding the inverse-arranged sequence makes the library's internal
    ``arrange`` a no-op, so node u holds ``vals[u]`` — the ablated layout.
    The output is read back in plain node order for comparison.
    """
    inv = np.empty(dc.num_nodes, dtype=np.int64)
    arr_idx = arranged_index_v(dc)
    inv[arr_idx] = np.arange(dc.num_nodes)
    pre = dual_prefix_vec(dc, vals[inv], ADD)
    return pre[inv]  # value that ended up at node u, in node order


def ablation_rows():
    rows = []
    for n in range(1, 7):
        dc = DualCube(n)
        rng = np.random.default_rng(n)
        vals = rng.integers(1, 1000, dc.num_nodes)
        truth = sequential_prefix(list(vals), ADD)
        with_arr = dual_prefix_vec(dc, vals, ADD)
        miss_with = sum(1 for a, b in zip(with_arr, truth) if a != b)
        ablated = without_arrangement(dc, vals)
        miss_without = sum(1 for a, b in zip(ablated, truth) if a != b)
        rows.append(
            (
                n,
                dc.num_nodes,
                miss_with,
                miss_without,
                round(miss_without / dc.num_nodes, 3),
            )
        )
    return rows


def test_arrangement_ablation(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    emit(
        "A2_arrangement_ablation",
        format_table(
            ["n", "nodes", "mismatches (with u*)", "mismatches (without)", "error fraction"],
            rows,
            title="A2: dropping the data arrangement breaks the prefix",
        ),
    )
    for n, _, with_arr, without_arr, frac in rows:
        assert with_arr == 0
        if n >= 2:
            assert without_arr > 0
            assert frac >= 0.25  # a large fraction of positions is wrong
        if n >= 3:
            assert frac > 0.3


def test_ablated_result_is_still_a_prefix_of_the_permuted_input(benchmark):
    """The ablation fails *only* through data placement: the computed
    values are exactly the prefix of the arranged permutation."""
    dc = DualCube(3)
    vals = np.random.default_rng(0).integers(1, 100, 32)

    def run():
        inv = np.empty(32, dtype=np.int64)
        inv[arranged_index_v(dc)] = np.arange(32)
        return dual_prefix_vec(dc, vals[inv], ADD)

    pre = benchmark(run)
    inv = np.empty(32, dtype=np.int64)
    inv[arranged_index_v(dc)] = np.arange(32)
    assert list(pre) == sequential_prefix(list(vals[inv]), ADD)
