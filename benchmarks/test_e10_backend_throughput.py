"""E10 — future-work item 2: empirical analysis of the simulation itself.

Wall-clock throughput of the two execution backends: the cycle-accurate
SPMD engine (per-message Python generators, used to *validate* step
counts) vs the vectorized whole-network backend (used to *scale*).

Expected shape: both produce identical results and counters; the
vectorized backend is orders of magnitude faster and its advantage grows
with network size — the profile-then-vectorize workflow of the HPC
guides applied to our own simulator.
"""

import numpy as np
import pytest

from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_vec
from repro.core.dual_sort import dual_sort_engine, dual_sort_vec
from repro.core.ops import ADD
from repro.topology import DualCube, RecursiveDualCube


@pytest.mark.parametrize("n", [2, 3, 4])
class TestPrefixThroughput:
    def test_engine(self, benchmark, n):
        benchmark.group = f"prefix D_{n}"
        dc = DualCube(n)
        vals = np.arange(dc.num_nodes).astype(object)
        out, _ = benchmark(lambda: dual_prefix_engine(dc, vals, ADD))
        assert out[-1] == dc.num_nodes * (dc.num_nodes - 1) // 2

    def test_vectorized(self, benchmark, n):
        benchmark.group = f"prefix D_{n}"
        dc = DualCube(n)
        vals = np.arange(dc.num_nodes)
        out = benchmark(lambda: dual_prefix_vec(dc, vals, ADD))
        assert out[-1] == dc.num_nodes * (dc.num_nodes - 1) // 2


@pytest.mark.parametrize("n", [2, 3])
class TestSortThroughput:
    def test_engine(self, benchmark, n):
        benchmark.group = f"sort D_{n}"
        rdc = RecursiveDualCube(n)
        keys = [int(k) for k in np.random.default_rng(n).permutation(rdc.num_nodes)]
        out, _ = benchmark(lambda: dual_sort_engine(rdc, keys))
        assert out == sorted(keys)

    def test_vectorized(self, benchmark, n):
        benchmark.group = f"sort D_{n}"
        rdc = RecursiveDualCube(n)
        keys = np.random.default_rng(n).permutation(rdc.num_nodes)
        out = benchmark(lambda: dual_sort_vec(rdc, keys))
        assert list(out) == sorted(keys)


class TestVectorizedScaling:
    """Vectorized backend headroom at sizes the engine cannot reach."""

    @pytest.mark.parametrize("n", [5, 6, 7, 8])
    def test_prefix_large(self, benchmark, n):
        benchmark.group = "vectorized prefix scaling"
        dc = DualCube(n)
        vals = np.random.default_rng(n).integers(0, 1000, dc.num_nodes)
        out = benchmark(lambda: dual_prefix_vec(dc, vals, ADD))
        assert out[-1] == vals.sum()

    @pytest.mark.parametrize("n", [5, 6, 7, 8])
    def test_sort_large(self, benchmark, n):
        benchmark.group = "vectorized sort scaling"
        rdc = RecursiveDualCube(n)
        keys = np.random.default_rng(n).permutation(rdc.num_nodes)
        out = benchmark(lambda: dual_sort_vec(rdc, keys))
        assert list(out) == list(range(rdc.num_nodes))
