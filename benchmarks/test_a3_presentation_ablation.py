"""A3 — ablation: the recursive presentation vs naive routing.

Algorithm 3 owes its 3-unit emulated steps to the recursive presentation:
an unsupported pair is always exactly (cross, intra, cross) apart.  This
ablation executes the *same* compare-exchange schedule but pairs nodes by
standard-presentation addresses, routing each exchange along shortest
paths — pairs at a standard dimension can then be up to 3 hops apart too,
but without the uniform relay structure, a synchronous step must wait for
the worst pair and serialize colliding relays.

Expected shape: per-step worst-pair distance is 1 or 3 in both
presentations (distances are isomorphic), but the naive schedule cannot
overlap relays: a conservative lower bound charging one time-unit per
hop with no packing gives the 4-cycle 'single' cost, and a pessimistic
store-and-forward bound doubles the 3-hop legs — the recursive
presentation's packed schedule beats both at every n.
"""

import numpy as np
import pytest

from repro.analysis.complexity import dual_sort_comm_exact
from repro.analysis.tables import format_table
from repro.core.dual_sort import dual_sort_schedule
from repro.topology import DualCube, RecursiveDualCube, recursive_to_standard

from benchmarks._util import emit


def naive_step_cost(dc: DualCube, n: int, dim: int) -> int:
    """Worst pairwise distance for the dim exchange, standard addresses.

    The schedule pairs recursive addresses u and u^2^dim; the naive
    executor looks the endpoints up in the standard presentation and
    routes point-to-point.  With full-duplex links and no message packing,
    a lower bound on the synchronous step is the worst pair distance plus
    one extra unit whenever relays collide on cross-edges (every 3-hop
    exchange shares its first-hop cross-edge with the reverse direction's
    last hop — fine — but the middle intra-cluster hop of pair (u,v)
    uses the same link as the direct exchange of the relaying pair, which
    must serialize: +1).
    """
    worst = 0
    collision = 0
    for u in range(dc.num_nodes):
        ru = u
        su = recursive_to_standard(n, ru)
        sv = recursive_to_standard(n, ru ^ (1 << dim))
        d = dc.distance(su, sv)
        worst = max(worst, d)
        if d == 3:
            collision = 1
    return worst + collision


def ablation_rows():
    rows = []
    for n in range(1, 6):
        dc = DualCube(n)
        sched = dual_sort_schedule(n)
        naive_total = sum(naive_step_cost(dc, n, s.dim) for s in sched)
        packed = dual_sort_comm_exact(n, payload_policy="packed")
        single = dual_sort_comm_exact(n, payload_policy="single")
        rows.append(
            (
                n,
                len(sched),
                packed,
                single,
                naive_total,
                round(naive_total / packed, 3) if packed else "-",
            )
        )
    return rows


def test_presentation_ablation(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    emit(
        "A3_presentation_ablation",
        format_table(
            [
                "n",
                "steps",
                "comm (recursive, packed)",
                "comm (recursive, single)",
                "comm (naive routed)",
                "naive/packed",
            ],
            rows,
            title="A3: the recursive presentation's relay packing vs naive "
            "shortest-path routing of the same schedule",
        ),
    )
    for n, _, packed, single, naive, _ in rows:
        assert packed <= single <= naive
        if n >= 2:
            assert naive > packed


@pytest.mark.parametrize("n", [2, 3, 4])
def test_pair_distances_identical_across_presentations(benchmark, n):
    """Sanity: the isomorphism preserves pair distances, so the advantage
    is scheduling/packing, not shorter paths."""
    dc = DualCube(n)
    rdc = RecursiveDualCube(n)

    def check():
        for dim in rdc.dimensions():
            for u in range(0, rdc.num_nodes, 7):
                su = recursive_to_standard(n, u)
                sv = recursive_to_standard(n, u ^ (1 << dim))
                assert dc.distance(su, sv) == len(rdc.emulation_path(u, dim)) - 1
        return True

    assert benchmark(check)
