"""E19 — extension: minimal fault cuts of D_n vs the hypercube.

The dual-cube trades half the hypercube's degree for the same node
count scaling; this experiment quantifies what that costs in fault
resilience.  For each topology we compute, fully statically:

* the minimal node cut that excludes some healthy rank from a degraded
  recovery run (Menger: equals the degree n for D_n);
* the minimal link cut with the same effect;
* the minimal node cut that breaks a 75% quorum.

Expected shape: all three columns equal the degree — D_n is maximally
fault-tolerant for its degree (kappa = lambda = n), so Q_5's doubled
degree buys exactly doubled cut sizes at the same 32-node scale as D_3.
Every row is exact (proved minimal, not just found), and the witness
cuts are concrete fault sets the differential suite can replay.
"""

from repro.analysis.static import minimal_cut_table
from repro.analysis.tables import format_table

from benchmarks._util import emit


def test_e19_minimal_cut_table():
    rows = minimal_cut_table(max_n=4)
    table_rows = []
    for row in rows:
        assert row["quorum_exact"], row["topology"]
        assert row["node_cut"] == row["link_cut"] == row["degree"]
        table_rows.append(
            (
                row["topology"],
                row["num_nodes"],
                row["degree"],
                row["node_cut"],
                row["link_cut"],
                row["quorum_cut"],
                "exact",
                row["evaluations"],
            )
        )
    text = format_table(
        ["topology", "nodes", "degree", "node cut", "link cut",
         "quorum cut", "proof", "evals"],
        table_rows,
        title="E19: minimal fault cuts (static, degraded recovery, 75% quorum)",
    )
    witness_lines = [
        f"{row['topology']}: node witness {list(row['node_witness'])}, "
        f"link witness {[list(e) for e in row['link_witness']]}"
        for row in rows
    ]
    emit("e19_minimal_cut", text + "\n" + "\n".join(witness_lines))


def test_e19_deterministic():
    assert minimal_cut_table(max_n=2) == minimal_cut_table(max_n=2)
