"""A1 — ablation: the reconstructed step 5 of Algorithm 2.

DESIGN.md's reconstruction note: the paper spends a third cross-edge
exchange in step 5 (giving Theorem 1's 2n+1), but the value class-1 nodes
need is already held locally as their own t' from step 3.  This ablation
runs both schedules and shows identical outputs with the literal variant
paying exactly one extra communication step at every n.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.dual_prefix import dual_prefix_engine, dual_prefix_vec
from repro.core.ops import ADD, CONCAT
from repro.simulator import CostCounters
from repro.topology import DualCube

from benchmarks._util import emit


def ablation_rows():
    rows = []
    for n in range(1, 9):
        dc = DualCube(n)
        rng = np.random.default_rng(n)
        vals = rng.integers(0, 1000, dc.num_nodes)
        c_opt = CostCounters(dc.num_nodes)
        out_opt = dual_prefix_vec(dc, vals, ADD, counters=c_opt)
        c_lit = CostCounters(dc.num_nodes)
        out_lit = dual_prefix_vec(dc, vals, ADD, paper_literal=True, counters=c_lit)
        identical = list(out_opt) == list(out_lit)
        rows.append(
            (
                n,
                c_opt.comm_steps,
                c_lit.comm_steps,
                c_lit.comm_steps - c_opt.comm_steps,
                c_opt.messages,
                c_lit.messages,
                "yes" if identical else "NO",
            )
        )
    return rows


def test_step5_ablation_table(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    emit(
        "A1_prefix_step5_ablation",
        format_table(
            [
                "n",
                "comm (optimized)",
                "comm (paper literal)",
                "extra steps",
                "msgs (opt)",
                "msgs (lit)",
                "outputs identical",
            ],
            rows,
            title="A1: Algorithm 2 step-5 reconstruction — the literal cross "
            "exchange is redundant",
        ),
    )
    for n, opt, lit, extra, m_opt, m_lit, ident in rows:
        assert extra == 1
        assert ident == "yes"
        assert m_lit - m_opt == 2 ** (2 * n - 1)  # one message per node


@pytest.mark.parametrize("paper_literal", [False, True])
def test_engine_wallclock_both_variants(benchmark, paper_literal):
    benchmark.group = "A1 engine variants"
    dc = DualCube(3)
    vals = np.empty(32, dtype=object)
    vals[:] = [(k,) for k in range(32)]

    def run():
        return dual_prefix_engine(dc, vals, CONCAT, paper_literal=paper_literal)

    out, res = benchmark(run)
    assert out[-1] == tuple(range(32))
    assert res.comm_steps == 6 + (1 if paper_literal else 0)
