"""Shared helpers for the benchmark harness.

Every experiment emits its regenerated artifact (table or figure panels)
through :func:`emit`, which both prints it (visible with ``pytest -s``)
and persists it under ``benchmarks/out/`` so the reproduction record
survives output capture.  EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it to ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def grid(values, width: int = 8) -> str:
    """Render a flat sequence as rows of ``width`` right-aligned cells."""
    vals = [str(v) for v in values]
    cell = max(len(v) for v in vals)
    lines = []
    for lo in range(0, len(vals), width):
        lines.append(" ".join(v.rjust(cell) for v in vals[lo : lo + width]))
    return "\n".join(lines)
