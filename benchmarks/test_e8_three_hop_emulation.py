"""E8 — Section 6's 3-hop compare-exchange claim, audited per dimension.

For every dimension of D_3/D_4: exactly half the pairs lack a direct link;
their exchanges route (cross, intra, cross) in 3 hops; under the 1-port
model the parallel step completes in 3 time-units if and only if the
middle hop packs two keys per message (the paper's accounting), and in
4 time-units with strict one-key messages — the reconstruction note this
reproduction documents.
"""

from collections import Counter

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.dual_sort import ScheduleStep, _compare_exchange_program, step_cycle_cost
from repro.simulator import Engine, Packed
from repro.topology import RecursiveDualCube

from benchmarks._util import emit


def run_one_dim(rdc, dim, policy):
    rng = np.random.default_rng(dim)
    keys = [int(k) for k in rng.integers(0, 100, rdc.num_nodes)]
    step = ScheduleStep(dim, "const", 0)

    def program(ctx):
        key = yield from _compare_exchange_program(ctx, rdc, step, keys[ctx.rank], policy)
        return key

    return keys, Engine(rdc, program, log_messages=True).run()


def hop_table_rows(n: int):
    rdc = RecursiveDualCube(n)
    rows = []
    for dim in rdc.dimensions():
        one = sum(1 for u in rdc.nodes() if rdc.exchange_hops(u, dim) == 1)
        three = rdc.num_nodes - one
        rows.append(
            (
                dim,
                "even" if dim % 2 == 0 else "odd",
                one,
                three,
                step_cycle_cost(rdc, dim, "packed"),
                step_cycle_cost(rdc, dim, "single"),
            )
        )
    return rows


@pytest.mark.parametrize("n", [3, 4])
def test_hop_histogram(benchmark, n):
    rows = benchmark.pedantic(hop_table_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"E8_hop_histogram_n{n}",
        format_table(
            ["dim", "parity", "1-hop nodes", "3-hop nodes", "cycles (packed)", "cycles (single)"],
            rows,
            title=f"D_{n}: per-dimension compare-exchange cost",
        ),
    )
    V = 2 ** (2 * n - 1)
    for dim, _, one, three, packed, single in rows:
        if dim == 0:
            assert one == V and three == 0 and packed == 1
        else:
            assert one == three == V // 2  # paper: "only half of the pairs"
            assert packed == 3 and single == 4


@pytest.mark.parametrize("policy,expect_cycles", [("packed", 3), ("single", 4)])
def test_one_port_schedule_audit(benchmark, policy, expect_cycles):
    """Independent audit via the raw message log: 1-port discipline holds
    and the step finishes in the claimed number of cycles."""
    rdc = RecursiveDualCube(3)

    def run():
        return run_one_dim(rdc, 3, policy)

    keys, res = benchmark(run)
    assert res.comm_steps == expect_cycles
    per_cycle_src = Counter((m.cycle, m.src) for m in res.message_log)
    per_cycle_dst = Counter((m.cycle, m.dst) for m in res.message_log)
    assert all(v == 1 for v in per_cycle_src.values())
    assert all(v == 1 for v in per_cycle_dst.values())
    for m in res.message_log:
        assert rdc.has_edge(m.src, m.dst)
    packed_msgs = [m for m in res.message_log if isinstance(m.payload, Packed)]
    if policy == "packed":
        assert len(packed_msgs) == rdc.num_nodes // 2
        assert all(len(m.payload) == 2 for m in packed_msgs)
    else:
        assert not packed_msgs
    # Every pair still computes the correct compare-exchange.
    for u in rdc.nodes():
        v = u ^ (1 << 3)
        lo, hi = sorted((keys[u], keys[v]))
        assert res.returns[u] == (lo if (u >> 3) & 1 == 0 else hi)


def test_policy_cost_comparison(benchmark):
    """Whole-sort cost under both payload policies (the reconstruction note)."""
    from repro.analysis.complexity import dual_sort_comm_exact, theorem2_comm_bound
    from repro.core.dual_sort import dual_sort_vec
    from repro.simulator import CostCounters

    def rows():
        out = []
        for n in range(1, 8):
            packed = dual_sort_comm_exact(n, payload_policy="packed")
            single = dual_sort_comm_exact(n, payload_policy="single")
            out.append((n, packed, single, theorem2_comm_bound(n)))
        return out

    table = benchmark(rows)
    emit(
        "E8_payload_policy_costs",
        format_table(
            ["n", "comm (packed, 2-key msgs)", "comm (single, 1-key msgs)", "paper bound"],
            table,
            title="1-port schedules: the paper's 3-unit step needs 2-key messages",
        ),
    )
    for n, packed, single, bound in table:
        assert packed <= bound
        assert single >= packed
    # The strict-single cost exceeds the paper bound once n >= 3 — evidence
    # that the paper's accounting presumes packed messages (or multi-port).
    assert table[3][2] > table[3][3]
