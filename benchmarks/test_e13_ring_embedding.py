"""E13 — hypercube-like properties: Hamiltonicity and ring embedding.

The paper's Section 1 positions the dual-cube as keeping "most of the
interesting properties of the hypercube architecture"; Hamiltonicity is
the canonical such property (rings embed with dilation 1, enabling every
ring algorithm unchanged).  The constructive induction over the recursive
presentation builds the cycle in O(V).

Expected shape: dilation 1 at every n; naive (address-order) ring mapping
pays the diameter-scale dilation; construction time linear in V.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.topology import (
    RecursiveDualCube,
    hamiltonian_cycle,
    ring_embedding_dilation,
)

from benchmarks._util import emit


def embedding_rows():
    rows = []
    for n in range(2, 8):
        rdc = RecursiveDualCube(n)
        cyc = hamiltonian_cycle(n)
        naive = ring_embedding_dilation(rdc, list(rdc.nodes()))
        ham = ring_embedding_dilation(rdc, cyc)
        rows.append((n, rdc.num_nodes, ham, naive, rdc.diameter()))
    return rows


def test_ring_embedding_table(benchmark):
    rows = benchmark.pedantic(embedding_rows, rounds=1, iterations=1)
    emit(
        "E13_ring_embedding",
        format_table(
            ["n", "nodes", "Hamiltonian dilation", "address-order dilation", "diameter"],
            rows,
            title="Ring embedding in D_n: the Hamiltonian mapping achieves dilation 1",
        ),
    )
    for n, _, ham, naive, diam in rows:
        assert ham == 1
        assert naive > 1
        assert naive <= diam


@pytest.mark.parametrize("n", [4, 6, 7])
def test_construction_wallclock(benchmark, n):
    benchmark.group = "E13 Hamiltonian construction"
    cyc = benchmark(lambda: hamiltonian_cycle(n))
    assert len(cyc) == 2 ** (2 * n - 1)


def test_ring_pipeline_demo(benchmark):
    """A ring algorithm running on the embedding: token circulation
    accumulating a sum around all 2^(2n-1) nodes in V unit-dilation hops."""
    rdc = RecursiveDualCube(3)
    cyc = hamiltonian_cycle(3)
    values = np.random.default_rng(0).integers(0, 100, 32)

    def run():
        total = 0
        hops = 0
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert rdc.has_edge(a, b)
            total += values[a]
            hops += 1
        return total, hops

    total, hops = benchmark(run)
    assert total == values.sum()
    assert hops == 32
