"""E1 — Figures 1-2: the D_2 and D_3 networks.

Regenerates the structures the paper draws: per-class cluster membership,
adjacency lists with the three-field address rendering (class / middle /
low), and the aggregate counts.  The benchmark times full construction +
structural validation of D_3.
"""

import pytest

from repro.analysis.tables import format_table
from repro.topology import DualCube

from benchmarks._util import emit


def render_network(n: int) -> str:
    dc = DualCube(n)
    m = dc.cluster_dim
    lines = [
        f"{dc.name}: {dc.num_nodes} nodes, {dc.edge_count()} edges, "
        f"degree {dc.n}, diameter {dc.diameter()}",
        f"classes: 2 x {dc.clusters_per_class} clusters x "
        f"{dc.nodes_per_cluster} nodes ({m}-cube clusters)",
        "",
    ]
    for cls in (0, 1):
        lines.append(f"class {cls}:")
        for k in range(dc.clusters_per_class):
            members = dc.cluster_members(cls, k)
            rendered = []
            for u in members:
                b = format(u, f"0{2 * n - 1}b")
                rendered.append(f"{b[0]}|{b[1 : 1 + max(m, 0)]}|{b[1 + m :]}")
            lines.append(f"  cluster {k}: " + "  ".join(rendered))
    lines.append("")
    lines.append("cross-edges (u <-> u with class bit flipped):")
    crosses = [
        f"{u}<->{dc.cross_partner(u)}"
        for u in dc.nodes()
        if dc.class_of(u) == 0
    ]
    lines.append("  " + "  ".join(crosses))
    return "\n".join(lines)


@pytest.mark.parametrize("n", [2, 3])
def test_figure_structure(benchmark, n):
    dc = benchmark(lambda: DualCube(n))
    art = render_network(n)
    emit(f"E1_fig{n - 1}_D{n}", art)
    # Paper facts: Fig.1's D_2 has 8 nodes; Fig.2's D_3 has 32 nodes with
    # 4 clusters of 4 nodes per class.
    assert dc.num_nodes == 2 ** (2 * n - 1)
    assert dc.edge_count() == n * 2 ** (2 * n - 2)
    assert all(dc.degree(u) == n for u in dc.nodes())


def test_construction_and_validation_benchmark(benchmark):
    def build():
        dc = DualCube(3)
        dc.validate()
        return dc

    dc = benchmark(build)
    assert dc.num_nodes == 32


def test_summary_table(benchmark):
    rows = []
    benchmark(lambda: [DualCube(n).edge_count() for n in range(1, 9)])
    for n in range(1, 9):
        dc = DualCube(n)
        rows.append(
            (
                dc.name,
                dc.num_nodes,
                dc.edge_count(),
                dc.n,
                dc.diameter(),
                dc.clusters_per_class,
            )
        )
    emit(
        "E1_family_table",
        format_table(
            ["network", "nodes", "edges", "degree", "diameter", "clusters/class"],
            rows,
            title="Dual-cube family D_1..D_8 (D_8 = the paper's 'tens of "
            "thousands of processors with up to eight connections')",
        ),
    )
    assert DualCube(8).num_nodes == 32768
