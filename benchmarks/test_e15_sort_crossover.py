"""E15 — three sorting algorithms on the dual-cube: the crossover.

The reproduction now has three ways to sort on D_n, all cycle-validated:

* `D_sort` (Algorithm 3): bitonic over the recursive presentation,
  6n² - 7n + 2 steps;
* odd-even transposition on the Hamiltonian ring: V = 2^(2n-1) steps;
* the same-size hypercube bitonic (the more-links baseline): 2n² - n.

Expected shape: the systolic ring wins the two smallest networks
(8 < 12 at n = 2, 32 < 35 at n = 3), then loses exponentially — the
textbook argument for logarithmic-depth networks that the paper's
Section 5 takes as given, here regenerated as a measured crossover.
"""

import numpy as np
import pytest

from repro.analysis.complexity import (
    dual_sort_comm_exact,
    hypercube_bitonic_steps,
)
from repro.analysis.tables import format_table
from repro.core.dual_sort import dual_sort_vec
from repro.core.ring_sort import ring_sort_engine, ring_sort_steps, ring_sort_vec
from repro.simulator import CostCounters
from repro.topology import RecursiveDualCube

from benchmarks._util import emit


def crossover_rows():
    rows = []
    for n in range(2, 8):
        rdc = RecursiveDualCube(n)
        v = rdc.num_nodes
        ring = ring_sort_steps(v)
        bitonic = dual_sort_comm_exact(n)
        rows.append(
            (
                n,
                v,
                ring,
                bitonic,
                hypercube_bitonic_steps(2 * n - 1),
                "ring" if ring < bitonic else "D_sort",
            )
        )
    return rows


def test_crossover_table(benchmark):
    rows = benchmark.pedantic(crossover_rows, rounds=1, iterations=1)
    emit(
        "E15_sort_crossover",
        format_table(
            ["n", "nodes", "ring sort steps", "D_sort steps", "Q_(2n-1) steps", "winner"],
            rows,
            title="E15: systolic ring sort vs bitonic D_sort — crossover at n = 4",
        ),
    )
    winners = [r[-1] for r in rows]
    assert winners[0] == winners[1] == "ring"  # n = 2, 3
    assert all(w == "D_sort" for w in winners[2:])  # n >= 4


@pytest.mark.parametrize("n", [2, 3])
def test_both_sorts_cycle_accurate(benchmark, n):
    benchmark.group = f"E15 engine sorts D_{n}"
    rdc = RecursiveDualCube(n)
    keys = [int(k) for k in np.random.default_rng(n).permutation(rdc.num_nodes)]

    def run():
        return ring_sort_engine(rdc, keys)

    out, res = benchmark(run)
    assert out == sorted(keys)
    assert res.comm_steps == ring_sort_steps(rdc.num_nodes)


def test_vectorized_agreement_at_scale(benchmark):
    rdc = RecursiveDualCube(5)
    keys = np.random.default_rng(0).permutation(rdc.num_nodes)

    def run():
        a = ring_sort_vec(rdc, keys)
        c = CostCounters(rdc.num_nodes)
        b = dual_sort_vec(rdc, keys, counters=c)
        return a, b, c

    a, b, c = benchmark.pedantic(run, rounds=1, iterations=1)
    assert list(a) == list(b) == list(range(512))
    assert c.comm_steps == dual_sort_comm_exact(5) < ring_sort_steps(512)
