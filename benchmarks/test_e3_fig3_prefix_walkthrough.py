"""E3 — Figure 3: the prefix-sum walkthrough on D_3, panels (a)-(f).

The paper's example input digits were lost to OCR; the reproduction uses
c = [1..32] (documented substitution — D_prefix is oblivious, so the
communication schedule is identical for any input and the prefix sums
1, 3, 6, 10, … are visually checkable).  Each panel prints the per-node
state laid out cluster by cluster, exactly the quantity the paper's
figure annotates.
"""

import numpy as np
import pytest

from repro import ADD, DualCube, TraceRecorder
from repro.core.dual_prefix import dual_prefix_vec

from benchmarks._util import emit

PANELS = [
    ("(a) input", "Original data distribution (arranged: c[u*] at node u)"),
    ("(b) cluster prefix s", "Prefix inside cluster (s)"),
    ("(b) cluster total t", "Prefix inside cluster (t = cluster total)"),
    ("(c) cross total temp", "Exchange t via cross-edge"),
    ("(d) block-prefix s'", "Prefix inside cluster over received totals (s')"),
    ("(d) half total t'", "Half totals (t')"),
    ("(e) after s' fold", "Get s' and prefix one time"),
    ("(f) final prefix", "Final result (class 1 adds t')"),
]


def render_panel(dc: DualCube, values) -> str:
    lines = []
    for cls in (0, 1):
        row = []
        for k in range(dc.clusters_per_class):
            members = dc.cluster_members(cls, k)
            row.append(",".join(f"{values[u]:>3}" for u in members))
        lines.append(f"  class {cls}:  " + "   ".join(row))
    return "\n".join(lines)


def test_figure3_panels(benchmark):
    dc = DualCube(3)
    values = np.arange(1, 33)

    def run():
        trace = TraceRecorder()
        out = dual_prefix_vec(dc, values, ADD, trace=trace)
        return out, trace

    out, trace = benchmark(run)

    art = [f"Prefix_sum([1..32]) on {dc.name} — Figure 3 panels"]
    for label, caption in PANELS:
        art.append(f"\n{label}  {caption}")
        art.append(render_panel(dc, trace.snapshot(label, 32)))
    emit("E3_fig3_prefix_walkthrough", "\n".join(art))

    # Paper-checkable values: triangular numbers.
    assert list(out) == [k * (k + 1) // 2 for k in range(1, 33)]
    # Panel (f) is the prefix in arranged positions.
    final = trace.snapshot("(f) final prefix", 32)
    from repro.core.arrangement import arranged_index

    for u in dc.nodes():
        assert final[u] == out[arranged_index(dc, u)]


def test_figure3_under_engine_matches(benchmark):
    """The cycle-accurate engine reproduces the identical panel states."""
    from repro.core.dual_prefix import dual_prefix_engine

    dc = DualCube(3)
    values = np.arange(1, 33).astype(object)

    def run():
        trace = TraceRecorder()
        out, res = dual_prefix_engine(dc, values, ADD, trace=trace)
        return out, res, trace

    out, res, trace = benchmark(run)
    vec_trace = TraceRecorder()
    dual_prefix_vec(dc, np.arange(1, 33), ADD, trace=vec_trace)
    for label, _ in PANELS:
        assert trace.snapshot(label, 32) == vec_trace.snapshot(label, 32), label
    assert res.comm_steps == 6  # 2n for n = 3
