"""E14 — latency vs bandwidth: tree allreduce vs Hamiltonian-ring allreduce.

Two allreduce algorithms on the same dual-cube, both cycle-accurate:

* the cluster-technique **tree** allreduce: 2n steps, full-vector
  messages (latency-optimal — 2n = diameter);
* the **ring** allreduce over the dilation-1 Hamiltonian embedding:
  2(V-1) steps, single-chunk messages (bandwidth-optimal — each node
  moves 2(V-1) chunks instead of 2nV).

Expected shape: the tree wins steps at every size by an exponentially
growing factor, the ring wins per-node traffic by a factor approaching
nV/(V-1) ~ n — the classic collective-communication tradeoff, here
enabled on a degree-n network by the Hamiltonicity of D_n.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.ops import ADD
from repro.routing.ring_allreduce import ring_allreduce_engine, ring_allreduce_steps
from repro.topology import RecursiveDualCube

from benchmarks._util import emit


def tradeoff_rows():
    rows = []
    for n in (2, 3):
        rdc = RecursiveDualCube(n)
        v = rdc.num_nodes
        rng = np.random.default_rng(n)
        vecs = rng.integers(0, 100, (v, v))
        results, res = ring_allreduce_engine(rdc, vecs.tolist(), ADD)
        assert results[0] == list(vecs.sum(axis=0))
        ring_payload_per_node = res.counters.payload_items / v
        tree_steps = 2 * n
        tree_payload_per_node = 2 * n * v  # full V-chunk vector per round
        rows.append(
            (
                n,
                v,
                tree_steps,
                res.comm_steps,
                tree_payload_per_node,
                int(ring_payload_per_node),
                round(tree_payload_per_node / ring_payload_per_node, 3),
            )
        )
    return rows


def test_tradeoff_table(benchmark):
    rows = benchmark.pedantic(tradeoff_rows, rounds=1, iterations=1)
    emit(
        "E14_allreduce_tradeoff",
        format_table(
            [
                "n",
                "nodes",
                "tree steps",
                "ring steps",
                "tree chunks/node",
                "ring chunks/node",
                "bandwidth gain",
            ],
            rows,
            title="E14: allreduce of a V-chunk vector — latency-optimal tree "
            "vs bandwidth-optimal Hamiltonian ring",
        ),
    )
    for n, v, tree_steps, ring_steps, tree_pay, ring_pay, gain in rows:
        assert tree_steps < ring_steps  # tree wins latency
        assert ring_pay < tree_pay  # ring wins bandwidth
        assert ring_steps == ring_allreduce_steps(v)
        assert ring_pay == 2 * (v - 1)
        assert gain > 1.0


@pytest.mark.parametrize("n", [2, 3])
def test_ring_allreduce_wallclock(benchmark, n):
    benchmark.group = "E14 ring allreduce"
    rdc = RecursiveDualCube(n)
    v = rdc.num_nodes
    vecs = np.random.default_rng(0).integers(0, 50, (v, v)).tolist()

    def run():
        return ring_allreduce_engine(rdc, vecs, ADD)

    results, res = benchmark(run)
    assert res.comm_steps == 2 * (v - 1)
