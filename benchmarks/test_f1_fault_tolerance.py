"""F1 — extension: fault tolerance of the dual-cube.

The dual-cube literature the paper builds on studies faulty networks;
this experiment measures what the degree-n structure buys:

* node connectivity is exactly n (Menger: n internally disjoint paths
  between every pair), so any n-1 node faults leave the network routable;
* BFS routing and local-information adaptive routing both keep succeeding
  at n-1 random faults, with bounded stretch.

Expected shape: success rate 1.0 up to n-1 faults; beyond that it decays
as random fault sets start cutting nodes off; adaptive stretch stays
small (the distance metric still guides well around isolated faults).
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.routing.fault_tolerant import (
    adaptive_route,
    ft_route,
    node_connectivity,
    node_disjoint_paths,
)
from repro.topology import DualCube, FaultSet, FaultyTopology

from benchmarks._util import emit


def fault_sweep_rows(n: int, trials: int = 40):
    dc = DualCube(n)
    rows = []
    for faults in range(0, 2 * n):
        reachable = routed = adaptive_ok = 0
        stretch_total = stretch_count = 0
        for t in range(trials):
            rng = np.random.default_rng(10_000 * n + 100 * faults + t)
            fs = FaultSet.random(dc, faults, 0, rng)
            ft = FaultyTopology(dc, fs)
            healthy = ft.healthy_nodes()
            u, v = (int(x) for x in rng.choice(healthy, 2, replace=False))
            p = ft_route(ft, u, v)
            if p is None:
                continue
            reachable += 1
            routed += 1
            walk = adaptive_route(ft, dc, u, v)
            if walk is not None and walk[-1] == v:
                adaptive_ok += 1
                stretch_total += (len(walk) - 1) / (len(p) - 1) if len(p) > 1 else 1
                stretch_count += 1
        rows.append(
            (
                faults,
                trials,
                reachable,
                routed,
                adaptive_ok,
                round(stretch_total / stretch_count, 3) if stretch_count else "-",
            )
        )
    return rows


@pytest.mark.parametrize("n", [3, 4])
def test_fault_sweep(benchmark, n):
    rows = benchmark.pedantic(fault_sweep_rows, args=(n,), rounds=1, iterations=1)
    emit(
        f"F1_fault_sweep_n{n}",
        format_table(
            ["node faults", "trials", "connected pairs", "BFS routed", "adaptive routed", "mean stretch"],
            rows,
            title=f"D_{n} under random node faults (connectivity = {n})",
        ),
    )
    for faults, trials, reachable, routed, adaptive_ok, _ in rows:
        assert routed == reachable  # BFS finds a path whenever one exists
        assert adaptive_ok == reachable  # backtracking greedy also succeeds
        if faults <= n - 1:
            # Below the connectivity, no healthy pair can be disconnected.
            assert reachable == trials


@pytest.mark.parametrize("n", [2, 3, 4])
def test_connectivity_equals_degree(benchmark, n):
    dc = DualCube(n)
    k = benchmark.pedantic(node_connectivity, args=(dc,), rounds=1, iterations=1)
    assert k == n


def test_disjoint_paths_table(benchmark):
    def rows():
        out = []
        for n in (2, 3, 4):
            dc = DualCube(n)
            rng = np.random.default_rng(n)
            counts = []
            longest = 0
            for _ in range(10):
                u, v = (int(x) for x in rng.choice(dc.num_nodes, 2, replace=False))
                paths = node_disjoint_paths(dc, u, v)
                counts.append(len(paths))
                longest = max(longest, max(len(p) - 1 for p in paths))
            out.append((n, min(counts), max(counts), longest, dc.diameter()))
        return out

    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    emit(
        "F1_disjoint_paths",
        format_table(
            ["n", "min disjoint paths", "max", "longest path used", "diameter"],
            table,
            title="Menger witnesses: n node-disjoint paths between random pairs",
        ),
    )
    for n, lo, hi, longest, diam in table:
        assert lo == hi == n
        assert longest <= diam + 2 * n  # detour paths stay short
