"""E16 — data-dependent vs oblivious sorting: key traffic and balance.

Sample sort routes each key once along a shortest path; the blocked
bitonic `large_sort` moves keys through the full oblivious schedule.
Comparing total key-link traversals shows *why* data-dependent sorting
wins bandwidth at scale — and the bucket-imbalance column shows what it
gives up (oblivious schedules never skew, adversarial inputs can blow a
sample-sort bucket up to N keys).

Expected shape: bitonic traversals per key ~ the schedule's payload cost
(grows with n²); sample-sort traversals per key ~ the network's mean
distance (grows linearly in n); imbalance ~ 1 on uniform data.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.apps.sample_sort import sample_sort
from repro.core.large_inputs import large_sort
from repro.simulator import CostCounters
from repro.topology import DualCube, RecursiveDualCube

from benchmarks._util import emit


def comparison_rows(b: int = 16):
    rows = []
    for n in (2, 3, 4):
        dc = DualCube(n)
        rdc = RecursiveDualCube(n)
        v = dc.num_nodes
        rng = np.random.default_rng(n)
        keys = rng.permutation(b * v)

        out_s, stats = sample_sort(dc, keys, oversample=8)
        assert list(out_s) == list(range(b * v))

        c = CostCounters(v)
        out_b = large_sort(rdc, keys, counters=c)
        assert list(out_b) == list(range(b * v))

        rows.append(
            (
                n,
                b * v,
                round(stats.key_link_traversals / (b * v), 3),
                round(c.payload_items / (b * v), 3),
                round(stats.imbalance, 3),
                round(stats.avg_key_distance, 3),
            )
        )
    return rows


def test_sample_vs_bitonic_traffic(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)
    emit(
        "E16_sample_sort",
        format_table(
            [
                "n",
                "keys",
                "sample-sort traversals/key",
                "bitonic traversals/key",
                "bucket imbalance",
                "avg key distance",
            ],
            rows,
            title="E16: data-dependent sample sort vs oblivious blocked bitonic",
        ),
    )
    prev_gap = 0.0
    for n, _, sample_t, bitonic_t, imb, avg_d in rows:
        assert sample_t < bitonic_t  # one routed trip beats the schedule
        assert imb < 2.0  # uniform data balances
        gap = bitonic_t / max(sample_t, 1e-9)
        assert gap > prev_gap  # the advantage grows with n
        prev_gap = gap


@pytest.mark.parametrize("n", [3, 4])
def test_sample_sort_wallclock(benchmark, n):
    benchmark.group = "E16 sample sort"
    dc = DualCube(n)
    keys = np.random.default_rng(0).permutation(32 * dc.num_nodes)
    out, _ = benchmark(lambda: sample_sort(dc, keys))
    assert out[0] == 0 and out[-1] == len(keys) - 1


def test_adversarial_skew(benchmark):
    """The oblivious algorithm's selling point: no input can skew it."""
    dc = DualCube(3)

    def run():
        keys = np.full(16 * 32, 42)
        return sample_sort(dc, keys)

    _, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E16_adversarial_skew",
        f"all-equal input: sample-sort bucket imbalance {stats.imbalance:.1f} "
        f"(one bucket got all {stats.num_keys} keys); the oblivious bitonic "
        f"schedule is input-independent by construction",
    )
    assert stats.imbalance == float(stats.num_buckets)
