"""Data-parallel kernels riding on D_prefix (Hillis-Steele style).

The paper cites "Data parallel algorithms" as the motivation for prefix
computation; this example runs the classic kernels on the dual-cube:
stream compaction, enumeration, first-order linear recurrences via a
non-commutative matrix scan, and segmented sums.

Run:  python examples/data_parallel_kernels.py
"""

import numpy as np

from repro import ADD, CONCAT, CostCounters, DualCube
from repro.apps import (
    enumerate_true,
    linear_recurrence,
    segmented_sum,
    stream_compact,
)
from repro.core.dual_prefix import dual_prefix_vec


def main() -> None:
    dc = DualCube(3)
    rng = np.random.default_rng(11)

    print("=== Stream compaction ===")
    values = rng.integers(0, 100, 32)
    kept = stream_compact(dc, values, lambda v: v % 7 == 0)
    print(f"input : {list(values)}")
    print(f"keep multiples of 7 -> {list(kept)}")
    print()

    print("=== Enumeration (diminished 0/1 scan) ===")
    flags = (values % 2 == 0).astype(int)
    slots = enumerate_true(dc, flags)
    print(f"even flags   : {list(flags)}")
    print(f"output slots : {list(slots)}")
    print()

    print("=== Linear recurrence x_{k+1} = a_k x_k + b_k (matrix scan) ===")
    a = np.full(32, 0.9)
    b = np.ones(32)
    xs = linear_recurrence(dc, a, b, x0=0.0)
    print("decay-accumulate system a=0.9, b=1, x0=0:")
    print(f"x_1..x_8   = {[round(float(x), 3) for x in xs[:8]]}")
    print(f"x_32       = {xs[-1]:.4f}  (limit 1/(1-0.9) = 10)")
    print()

    print("=== Segmented sums ===")
    heads = np.zeros(32, dtype=int)
    heads[[0, 8, 20]] = 1
    segs = segmented_sum(dc, np.ones(32), heads)
    print(f"segment heads at 0, 8, 20; running lengths: {list(map(int, segs))}")
    print()

    print("=== Any associative operation drops in ===")
    words = np.empty(32, dtype=object)
    words[:] = [(chr(ord('a') + k % 26),) for k in range(32)]
    counters = CostCounters(32)
    scan = dual_prefix_vec(dc, words, CONCAT, counters=counters)
    print(f"concat scan tail: {''.join(scan[-1])}")
    print(f"every kernel above used {counters.comm_steps} communication steps "
          f"(2n for n=3), regardless of the operation")


if __name__ == "__main__":
    main()
