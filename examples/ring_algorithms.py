"""Ring algorithms on the dual-cube via the Hamiltonian embedding.

D_n is Hamiltonian, so a ring of all 2^(2n-1) processes embeds with
dilation 1 — every classic ring algorithm runs with each hop a real
link.  This demo runs two of them cycle-accurately on the engine:

* token circulation (one `Shift` per step, the whole ring moves at once);
* ring allreduce of V-chunk vectors (bandwidth-optimal: 2(V-1) steps of
  single-chunk messages), compared against the 2n-step tree allreduce.

Run:  python examples/ring_algorithms.py
"""

import numpy as np

from repro import RecursiveDualCube, run_spmd
from repro.core.ops import ADD
from repro.routing.ring_allreduce import ring_allreduce_engine
from repro.simulator import Shift
from repro.topology.hamiltonian import hamiltonian_cycle


def main() -> None:
    n = 3
    rdc = RecursiveDualCube(n)
    v = rdc.num_nodes
    cycle = hamiltonian_cycle(n)
    print(f"{rdc.name}: Hamiltonian cycle of {v} nodes, dilation 1")
    print(f"first hops: {' -> '.join(map(str, cycle[:10]))} ...")
    print()

    succ = {cycle[k]: cycle[(k + 1) % v] for k in range(v)}
    pred = {cycle[k]: cycle[(k - 1) % v] for k in range(v)}

    # --- token circulation ---------------------------------------------------
    def rotate(ctx):
        token = ctx.rank
        for _ in range(5):
            token = yield Shift(succ[ctx.rank], token, pred[ctx.rank])
        return token

    res = run_spmd(rdc, rotate)
    print(f"5 simultaneous ring rotations: {res.comm_steps} cycles, "
          f"{res.counters.messages} messages "
          f"(every node sends and receives every cycle)")
    pos = {node: k for k, node in enumerate(cycle)}
    sample = 7
    print(f"node {sample} now holds the token of node "
          f"{res.returns[sample]} (5 ring positions behind)")
    print()

    # --- ring allreduce --------------------------------------------------------
    rng = np.random.default_rng(0)
    vecs = rng.integers(0, 100, (v, v))
    results, res = ring_allreduce_engine(rdc, vecs.tolist(), ADD)
    assert results[0] == list(vecs.sum(axis=0))
    per_node = res.counters.payload_items // v
    print(f"ring allreduce of {v}-chunk vectors:")
    print(f"  steps: {res.comm_steps} (= 2(V-1)); tree allreduce: {2 * n}")
    print(f"  chunks moved per node: {per_node} (= 2(V-1)); "
          f"tree would move {2 * n * v} (full vector per round)")
    print(f"  -> the ring trades {res.comm_steps - 2 * n} extra steps for a "
          f"{2 * n * v / per_node:.1f}x bandwidth saving")


if __name__ == "__main__":
    main()
