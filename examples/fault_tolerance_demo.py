"""Fault tolerance: routing a dual-cube with failed processors.

D_n is n-connected — every node has n links and there are n node-disjoint
paths between any two nodes — so the network survives any n-1 processor
failures.  This demo kills processors in a D_4 (128 nodes, degree 4),
shows the surviving disjoint paths, and compares global-information BFS
routing against local-information adaptive routing.

Run:  python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro.routing.fault_tolerant import (
    adaptive_route,
    ft_route,
    node_connectivity,
    node_disjoint_paths,
)
from repro.topology import DualCube, FaultSet, FaultyTopology
from repro.viz import render_route


def main() -> None:
    n = 4
    dc = DualCube(n)
    print(f"{dc.name}: {dc.num_nodes} nodes, degree {dc.n}, "
          f"node connectivity {node_connectivity(DualCube(3))} measured on D_3 "
          f"(= n; D_4 exact check is slower but identical by structure)")
    print()

    u, v = 0, dc.num_nodes - 1
    paths = node_disjoint_paths(dc, u, v)
    print(f"{len(paths)} node-disjoint paths {u} -> {v}:")
    for p in paths:
        print(f"  {' -> '.join(map(str, p))}")
    print()

    rng = np.random.default_rng(13)
    faults = FaultSet.random(dc, n - 1, 0, rng)
    ft = FaultyTopology(dc, faults)
    print(f"killing {n - 1} random processors: {sorted(faults.nodes)}")
    print()

    healthy = ft.healthy_nodes()
    demo_pairs = [(healthy[0], healthy[-1]), (healthy[3], healthy[-7])]
    for a, b in demo_pairs:
        bfs = ft_route(ft, a, b)
        walk = adaptive_route(ft, dc, a, b)
        print(f"{a} -> {b}: fault-free distance {dc.distance(a, b)}, "
              f"BFS around faults {len(bfs) - 1} hops, "
              f"adaptive walk {len(walk) - 1} hops")
    print()

    print("one BFS route in detail:")
    print(render_route(dc, ft_route(ft, demo_pairs[0][0], demo_pairs[0][1])))
    print()

    # Success-rate sweep past the guarantee.
    print("random-fault sweep (30 trials each):")
    for k in (n - 1, n + 1, 2 * n, 3 * n):
        ok = 0
        for t in range(30):
            trial = np.random.default_rng(1000 * k + t)
            fs = FaultSet.random(dc, k, 0, trial)
            fview = FaultyTopology(dc, fs)
            h = fview.healthy_nodes()
            a, b = (int(x) for x in trial.choice(h, 2, replace=False))
            if ft_route(fview, a, b) is not None:
                ok += 1
        guarantee = " (guaranteed)" if k <= n - 1 else ""
        print(f"  {k:2d} faults: {ok}/30 random pairs connected{guarantee}")


if __name__ == "__main__":
    main()
