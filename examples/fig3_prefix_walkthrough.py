"""Figure 3 walkthrough: prefix sums on D_3, panel by panel.

Reproduces the paper's Figure 3 — the six intermediate states (a)-(f) of
Algorithm 2 computing Prefix_sum([1..32]) on the 32-node dual-cube —
rendered cluster by cluster exactly as the figure annotates them.

Run:  python examples/fig3_prefix_walkthrough.py
"""

import numpy as np

from repro import ADD, DualCube, TraceRecorder
from repro.core.dual_prefix import dual_prefix_vec

CAPTIONS = {
    "(a) input": "Original data distribution (node u holds c[u*])",
    "(b) cluster prefix s": "Step 1 - prefix inside each cluster (s)",
    "(b) cluster total t": "Step 1 - cluster totals (t)",
    "(c) cross total temp": "Step 2 - exchange t via cross-edge",
    "(d) block-prefix s'": "Step 3 - diminished prefix of received totals (s')",
    "(d) half total t'": "Step 3 - half totals (t')",
    "(e) after s' fold": "Step 4 - get s' and prefix one time",
    "(f) final prefix": "Step 5 - final result (class 1 adds t')",
}


def render(dc: DualCube, values) -> str:
    lines = []
    for cls in (0, 1):
        cells = []
        for k in range(dc.clusters_per_class):
            members = dc.cluster_members(cls, k)
            cells.append("[" + " ".join(f"{values[u]:>3}" for u in members) + "]")
        lines.append(f"  class {cls}:  " + "  ".join(cells))
    return "\n".join(lines)


def main() -> None:
    dc = DualCube(3)
    values = np.arange(1, 33)
    trace = TraceRecorder()
    result = dual_prefix_vec(dc, values, ADD, trace=trace)

    print("Prefix_sum([1,2,...,32]) =")
    print(f"  {list(result)}")
    print()
    print(f"Each cluster shown as [node0 node1 node2 node3] by node ID;")
    print(f"clusters left to right are cluster 0..{dc.clusters_per_class - 1}.")
    for label in trace.labels():
        print()
        print(f"{label} — {CAPTIONS[label]}")
        print(render(dc, trace.snapshot(label, dc.num_nodes)))

    expected = [k * (k + 1) // 2 for k in range(1, 33)]
    assert list(result) == expected
    print()
    print("verified: result equals the triangular numbers 1, 3, 6, ..., 528")


if __name__ == "__main__":
    main()
