"""Quickstart: the dual-cube library in five minutes.

Builds the 32-node D_3 from the paper's Figure 2, runs the two headline
algorithms (parallel prefix and bitonic sort) on both execution backends,
and shows the cost counters that Theorems 1-2 talk about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ADD,
    CostCounters,
    DualCube,
    RecursiveDualCube,
    dual_prefix,
    dual_sort,
)


def main() -> None:
    # --- the network -------------------------------------------------------
    dc = DualCube(3)
    print(f"{dc.name}: {dc.num_nodes} nodes, {dc.edge_count()} edges, "
          f"{dc.n} links per node, diameter {dc.diameter()}")
    print(f"clusters: 2 classes x {dc.clusters_per_class} clusters x "
          f"{dc.nodes_per_cluster} nodes, each a {dc.cluster_dim}-cube")
    u = dc.compose(0, 2, 1)
    print(f"node {u:2d} = {format(u, '05b')}  class={dc.class_of(u)} "
          f"cluster={dc.cluster_id(u)} id={dc.node_id(u)} "
          f"neighbors={dc.neighbors(u)}")
    print()

    # --- parallel prefix (Algorithm 2) --------------------------------------
    values = np.arange(1, 33)
    counters = CostCounters(dc.num_nodes)
    prefix = dual_prefix(dc, values, ADD, counters=counters)
    print(f"prefix sums of 1..32 : {list(prefix[:8])} ... {prefix[-1]}")
    print(f"cost: {counters.comm_steps} communication steps "
          f"(Theorem 1 bound: {2 * 3 + 1}), "
          f"{counters.comp_steps} computation steps")
    print()

    # --- sorting (Algorithm 3) ----------------------------------------------
    rdc = RecursiveDualCube(3)
    keys = np.random.default_rng(7).permutation(32)
    counters = CostCounters(rdc.num_nodes)
    sorted_keys = dual_sort(rdc, keys, counters=counters)
    print(f"sorting {list(keys[:10])}... ->")
    print(f"        {list(sorted_keys[:10])}...")
    print(f"cost: {counters.comm_steps} communication steps "
          f"(Theorem 2 bound: {6 * 9 - 3 * 3 - 2}), "
          f"{counters.comp_steps} comparison steps")
    print()

    # --- the cycle-accurate engine ------------------------------------------
    # The same algorithms run as true SPMD message-passing programs on a
    # simulator that enforces the paper's 1-port model; counts match.
    prefix_e, result = dual_prefix(dc, values.astype(object), ADD, backend="engine")
    assert list(prefix_e) == list(prefix)
    print(f"engine replay: identical results, comm steps = "
          f"{result.comm_steps}, messages = {result.counters.messages}")


if __name__ == "__main__":
    main()
