"""Sorting showcase: Figures 5-6 plus order-statistics applications.

Part 1 replays the paper's Figures 5-6: D_sort on D_3 first generates a
bitonic sequence (four alternately sorted D_2 copies, then the half
merge), then sorts it with the final merge.  Part 2 uses the sorted
network for the classic payoffs: quantiles, top-k, and histograms of a
distributed dataset.

Run:  python examples/sorting_showcase.py
"""

import numpy as np

from repro import RecursiveDualCube, TraceRecorder
from repro.apps import parallel_histogram, parallel_quantiles, parallel_top_k
from repro.core.bitonic import is_bitonic
from repro.core.dual_sort import dual_sort_vec


def show(state, note=""):
    cells = " ".join(f"{v:>2}" for v in state)
    print(f"  {cells}   {note}")


def main() -> None:
    rdc = RecursiveDualCube(3)
    rng = np.random.default_rng(2008)
    keys = rng.permutation(32)

    trace = TraceRecorder()
    out = dual_sort_vec(rdc, keys, trace=trace)
    labels = list(trace.labels())

    print("=== Figure 5: generate a bitonic sequence in D_3 ===")
    show(trace.snapshot("input", 32), "input keys")
    # End of the recursive sub-sorts: copies sorted asc/desc/asc/desc.
    first_hm = next(i for i, l in enumerate(labels) if "half-merge D_3" in l)
    show(
        trace.snapshot(labels[first_hm - 1], 32),
        "after the four D_2 sorts (asc | desc | asc | desc)",
    )
    hm_end = [l for l in labels if "half-merge D_3" in l][-1]
    state = trace.snapshot(hm_end, 32)
    show(state, "after the half merge: one bitonic sequence")
    assert is_bitonic(state)

    print()
    print("=== Figure 6: sort the bitonic sequence ===")
    for l in labels:
        if "full-merge D_3" in l:
            show(trace.snapshot(l, 32), l.split("[")[0].strip())
    assert list(out) == list(range(32))
    print()
    print("sorted:", list(out))

    print()
    print("=== Order statistics on the sorted network ===")
    data = rng.normal(loc=50.0, scale=15.0, size=32)
    qs = parallel_quantiles(rdc, data, [0.1, 0.5, 0.9])
    print(f"deciles of N(50, 15) sample: p10={qs[0]:.1f} "
          f"median={qs[1]:.1f} p90={qs[2]:.1f}")
    top = parallel_top_k(rdc, data, 3)
    print(f"top-3: {[round(float(v), 1) for v in top]}")
    hist = parallel_histogram(rdc, data, [0, 25, 50, 75, 100])
    print(f"histogram over [0,25,50,75,100]: {[int(c) for c in hist]}")
    assert hist.sum() <= 32


if __name__ == "__main__":
    main()
