"""Cluster-scale demo: D_5 with blocked inputs and collectives.

The paper's future work asks for inputs larger than the network and for
empirical analysis; this example runs a 512-node D_5 with 64 keys per
node (32768 keys total), plus broadcast and allreduce, and prints the
measured communication costs next to the closed forms.

Run:  python examples/cluster_scale_demo.py
"""

import time

import numpy as np

from repro import ADD, CostCounters, DualCube, RecursiveDualCube, broadcast_engine
from repro.analysis.complexity import (
    dual_prefix_comm_exact,
    dual_sort_comm_exact,
)
from repro.core.large_inputs import large_prefix, large_sort
from repro.routing import allreduce_vec


def main() -> None:
    n = 5
    dc = DualCube(n)
    rdc = RecursiveDualCube(n)
    B = 64
    N = B * dc.num_nodes
    rng = np.random.default_rng(0)
    print(f"network: {dc.name} with {dc.num_nodes} nodes, {dc.n} links each; "
          f"{B} items per node, N = {N}")
    print()

    print("=== Blocked prefix sums ===")
    values = rng.integers(0, 1000, N)
    counters = CostCounters(dc.num_nodes)
    t0 = time.perf_counter()
    prefix = large_prefix(dc, values, ADD, counters=counters)
    dt = time.perf_counter() - t0
    assert prefix[-1] == values.sum()
    print(f"prefix of {N} values: {counters.comm_steps} network steps "
          f"(= plain D_prefix's {dual_prefix_comm_exact(n)}), "
          f"{counters.max_node_ops} local ops/node, {dt * 1e3:.1f} ms simulated")
    print()

    print("=== Blocked sort (merge-split bitonic) ===")
    keys = rng.permutation(N)
    counters = CostCounters(rdc.num_nodes)
    t0 = time.perf_counter()
    skeys = large_sort(rdc, keys, counters=counters)
    dt = time.perf_counter() - t0
    assert list(skeys[:3]) == [0, 1, 2] and skeys[-1] == N - 1
    print(f"sort of {N} keys: {counters.comm_steps} network steps "
          f"(= plain D_sort's {dual_sort_comm_exact(n)}), "
          f"max message payload {counters.max_message_payload} keys, "
          f"{dt * 1e3:.1f} ms simulated")
    print()

    print("=== Collectives ===")
    totals = allreduce_vec(dc, values[: dc.num_nodes], ADD)
    print(f"allreduce on {dc.num_nodes} nodes: total {totals[0]} at every node "
          f"in {2 * n} steps")
    small = DualCube(3)
    got, res = broadcast_engine(small, 0, "hello")
    print(f"broadcast on {small.name} (cycle-accurate engine): all "
          f"{small.num_nodes} nodes received in {res.comm_steps} steps "
          f"(= diameter {small.diameter()})")


if __name__ == "__main__":
    main()
