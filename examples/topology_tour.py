"""Topology tour: why the dual-cube (the paper's Sections 1-2 and 4).

Walks the structural story: the dual-cube keeps hypercube-like distances
with about half the links per node, against the bounded-degree rivals;
shortest-path routing pays at most two extra cross-edge hops; and D_n is
built recursively from four D_{n-1}.

Run:  python examples/topology_tour.py
"""

from repro import (
    CubeConnectedCycles,
    DeBruijn,
    DualCube,
    Hypercube,
    RecursiveDualCube,
    ShuffleExchange,
    WrappedButterfly,
    route,
)
from repro.analysis.tables import format_table
from repro.topology import measure


def main() -> None:
    print("=== Degree / diameter landscape around 512 nodes ===")
    rows = [
        measure(t).row()
        for t in (
            DualCube(5),
            Hypercube(9),
            CubeConnectedCycles(6),
            WrappedButterfly(6),
            DeBruijn(9),
            ShuffleExchange(9),
        )
    ]
    print(
        format_table(
            ["network", "nodes", "edges", "degree", "diameter", "avg dist", "deg*diam"],
            rows,
        )
    )
    print()

    print("=== Scaling to 'tens of thousands of processors' ===")
    rows = []
    for n in range(2, 9):
        dc = DualCube(n)
        rows.append((dc.name, dc.num_nodes, dc.n, 2 * n - 1, dc.diameter()))
    print(
        format_table(
            ["network", "nodes", "links/node", "hypercube would need", "diameter"],
            rows,
        )
    )
    print()

    print("=== Routing: at most Hamming + 2 ===")
    dc = DualCube(3)
    cases = [
        (dc.compose(0, 1, 2), dc.compose(0, 1, 3), "same cluster"),
        (dc.compose(0, 1, 2), dc.compose(1, 3, 0), "different classes"),
        (dc.compose(0, 0, 0), dc.compose(0, 3, 2), "same class, different clusters"),
    ]
    for u, v, kind in cases:
        path = route(dc, u, v)
        print(f"{kind:32s} {u:2d} -> {v:2d}: "
              f"{' -> '.join(format(w, '05b') for w in path)}  "
              f"({len(path) - 1} hops, distance {dc.distance(u, v)})")
    print()

    print("=== Recursive construction (Figure 4) ===")
    for n in (2, 3):
        r = RecursiveDualCube(n)
        joins = r.joining_edges()
        print(f"D_{n} = four D_{n - 1} copies "
              f"{[tuple(r.subcube_members(i))[:2] + ('...',) for i in range(4)]}"
              f" + {len(joins)} joining links")
    r = RecursiveDualCube(3)
    print(f"D_3 joining links: {r.joining_edges()}")


if __name__ == "__main__":
    main()
