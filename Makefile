PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke bench-faults-smoke bench

## check: tier-1 test suite + bench smoke runs (what CI gates on)
check: test bench-smoke bench-faults-smoke

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m repro bench --smoke --out BENCH_smoke.json

bench-faults-smoke:
	$(PYTHON) -m repro bench --faults --smoke --out BENCH_faults_smoke.json

## bench: full sweep, refreshes BENCH_core.json at the repo root
bench:
	$(PYTHON) -m repro bench
