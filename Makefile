PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint check-schedule check-faults-smoke timeline-smoke bench-smoke bench-faults-smoke bench-columnar-smoke bench-replay-smoke bench-serving-smoke bench-campaign-smoke campaign-smoke bench bench-columnar bench-replay bench-serving bench-campaign

## check: tier-1 tests + static analysis + timeline/bench smoke runs (what CI gates on)
check: test lint check-schedule check-faults-smoke timeline-smoke bench-smoke bench-faults-smoke bench-columnar-smoke bench-replay-smoke bench-serving-smoke bench-campaign-smoke campaign-smoke

test:
	$(PYTHON) -m pytest -x -q

## lint: repo-wide AST lint (REP001-REP007) over src/, tests/ and
## benchmarks/ — per-path rule profiles relax asserts in tests and
## prints in benchmarks (see repro.analysis.static.lint.RULE_PROFILES)
lint:
	$(PYTHON) -m repro lint src tests benchmarks

## check-schedule: static Theorem 1/2 schedule verification, D_2..D_5
check-schedule:
	$(PYTHON) -m repro check-schedule

## check-faults-smoke: shard/columnar race check of the compiled plans
check-faults-smoke:
	$(PYTHON) -m repro check-faults --plan

## timeline-smoke: record prefix+sort timelines, validate them against the
## static schedules, and exercise both metrics exporters (exit 1 on divergence)
timeline-smoke:
	$(PYTHON) -m repro timeline --smoke

bench-smoke:
	$(PYTHON) -m repro bench --smoke --out BENCH_smoke.json

bench-faults-smoke:
	$(PYTHON) -m repro bench --faults --smoke --out BENCH_faults_smoke.json

## bench-columnar-smoke: columnar backend at n=9 (131072 nodes), cost counters
## regression-gated against the committed baseline (wide wall factor — only
## the deterministic counters are meaningful gates on shared CI machines)
bench-columnar-smoke:
	$(PYTHON) -m repro bench --backend columnar --smoke \
		--out BENCH_columnar_smoke.json --compare BENCH_columnar_smoke.json \
		--wall-factor 20

## bench-replay-smoke: compiled-plan replay backend (n<=3 plus a sharded
## row), cost counters regression-gated against the committed baseline
## (wide wall factor — only the deterministic counters gate on CI machines)
bench-replay-smoke:
	$(PYTHON) -m repro bench --backend replay --smoke \
		--out BENCH_replay_smoke.json --compare BENCH_replay_smoke.json \
		--wall-factor 20

## bench-serving-smoke: open-loop queueing scenarios at n=2, deterministic
## serving counters regression-gated against the committed baseline (wide
## wall factor — only the counters are meaningful gates on CI machines)
bench-serving-smoke:
	$(PYTHON) -m repro bench --backend serving --smoke \
		--out BENCH_serving_smoke.json --compare BENCH_serving_smoke.json \
		--wall-factor 20

## bench-campaign-smoke: randomized SLO fault campaign at n=2, deterministic
## search fingerprint regression-gated against the committed baseline
bench-campaign-smoke:
	$(PYTHON) -m repro bench --backend campaign --smoke \
		--out BENCH_campaign_smoke.json --compare BENCH_campaign_smoke.json \
		--wall-factor 20

## campaign-smoke: run the D_2 campaign end to end and validate the report
## schema (exits nonzero on drift or a failed static cross-check)
campaign-smoke:
	$(PYTHON) -m repro campaign --smoke

## bench: full sweep, refreshes BENCH_core.json at the repo root
bench:
	$(PYTHON) -m repro bench

## bench-columnar: columnar sweep to D_11, merged into BENCH_core.json
bench-columnar:
	$(PYTHON) -m repro bench --backend columnar

## bench-replay: replay sweep (plus sharded D_9 row), merged into BENCH_core.json
bench-replay:
	$(PYTHON) -m repro bench --backend replay

## bench-serving: full serving scenario sweep, merged into BENCH_core.json
bench-serving:
	$(PYTHON) -m repro bench --backend serving

## bench-campaign: campaign sweep to D_3, merged into BENCH_core.json
bench-campaign:
	$(PYTHON) -m repro bench --backend campaign
